//! Fault injection and in-simulation recovery.
//!
//! The paper measures only checkpoint *cost*; this crate exercises what
//! checkpoints buy. It supplies the three pieces the simulation core needs
//! to make failures first-class DES events:
//!
//! 1. [`FailureModel`] — seeded, per-entity Poisson crash processes for
//!    mobile hosts and (optionally) support stations. Each entity draws
//!    from its own RNG substream, so trajectories are byte-identical
//!    across repeats of a seed, and a run with failures disabled draws
//!    nothing at all.
//! 2. [`plan_recovery`] — given the causality trace, the message log and
//!    each crashed host's checkpoint/log placement, computes the recovery
//!    the engine then *executes* inside the simulation: restart ordinals
//!    and the undone/replayed split come from the greatest orphan-free
//!    fixpoint (`relog::ReplayPlan`); wall-clock downtime is composed from
//!    the recovery-line query, backbone fetches of the restart checkpoint
//!    and the message log from their residence stations, the wireless
//!    restart push, and per-entry log replay.
//! 3. [`RecoveryStats`] — the per-run accumulator reports expose
//!    (downtime, work lost, availability, fetch volume).
//!
//! The planner is deliberately storage-agnostic: placement arrives as
//! plain [`HostSituation`] values, so the crate depends only on the trace
//! and log abstractions, not on `mobnet`'s stores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use causality::trace::{ProcId, Trace};
use relog::{MessageLog, ReplayPlan};
use simkit::rng::SimRng;

/// Seeded Poisson crash processes for mobile hosts and support stations.
///
/// Every entity owns an independent RNG substream forked from the stream
/// handed to [`FailureModel::new`], so crash times of host `i` do not
/// depend on how many crashes other entities drew — the property that
/// keeps failure-enabled runs byte-identical per seed.
#[derive(Debug, Clone)]
pub struct FailureModel {
    mh_mtbf: f64,
    mss_mtbf: f64,
    mh_rngs: Vec<SimRng>,
    mss_rngs: Vec<SimRng>,
}

impl FailureModel {
    /// A model over `n_mhs` hosts and `n_mss` stations. An MTBF of 0
    /// disables that crash class (and forks no RNG for it).
    pub fn new(mh_mtbf: f64, mss_mtbf: f64, rng: &SimRng, n_mhs: usize, n_mss: usize) -> Self {
        assert!(mh_mtbf >= 0.0 && mss_mtbf >= 0.0, "MTBF must be non-negative");
        FailureModel {
            mh_mtbf,
            mss_mtbf,
            mh_rngs: if mh_mtbf > 0.0 {
                (0..n_mhs).map(|i| rng.fork(i as u64)).collect()
            } else {
                Vec::new()
            },
            mss_rngs: if mss_mtbf > 0.0 {
                (0..n_mss).map(|j| rng.fork(100_000 + j as u64)).collect()
            } else {
                Vec::new()
            },
        }
    }

    /// Whether mobile-host crashes are enabled.
    pub fn mh_crashes(&self) -> bool {
        self.mh_mtbf > 0.0
    }

    /// Whether station crashes are enabled.
    pub fn mss_crashes(&self) -> bool {
        self.mss_mtbf > 0.0
    }

    /// Draws the next crash time of host `host` after `now`, or `None`
    /// when MH crashes are disabled.
    pub fn next_mh_crash(&mut self, host: usize, now: f64) -> Option<f64> {
        if !self.mh_crashes() {
            return None;
        }
        let dt = self.mh_rngs[host].exp(self.mh_mtbf);
        Some(now + dt)
    }

    /// Draws the next crash time of station `mss` after `now`, or `None`
    /// when MSS crashes are disabled.
    pub fn next_mss_crash(&mut self, mss: usize, now: f64) -> Option<f64> {
        if !self.mss_crashes() {
            return None;
        }
        let dt = self.mss_rngs[mss].exp(self.mss_mtbf);
        Some(now + dt)
    }
}

/// Cost parameters of the in-simulation recovery procedure, mirroring (and
/// extending with log replay) the E5 fetch-wave model in `mck::failure`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryParams {
    /// One-way MSS–MSS latency on the wired backbone.
    pub wired_latency: f64,
    /// One-way wireless hop latency.
    pub wireless_latency: f64,
    /// Full checkpoint size in bytes (what a restart fetch moves).
    pub ckpt_bytes: u64,
    /// Wired backbone bandwidth in bytes per time unit.
    pub wired_bandwidth: f64,
    /// Wireless bandwidth in bytes per time unit (infinity = pure-latency
    /// model, the paper's default).
    pub wireless_bandwidth: f64,
    /// Time to re-deliver one logged receive to the restarted host.
    pub replay_entry_cost: f64,
    /// Number of support stations (broadcast fan-out of the recovery-line
    /// query when no location vectors exist).
    pub n_mss: usize,
    /// True for TP, whose `LOC[]` vectors make the recovery-line query a
    /// single local read instead of a broadcast.
    pub has_location_vectors: bool,
}

impl Default for RecoveryParams {
    /// Defaults matching `mck::failure::RecoveryCostModel`: 0.01 latencies,
    /// 1 MiB checkpoints, 100 MiB/t.u. backbone, 5 stations.
    fn default() -> Self {
        RecoveryParams {
            wired_latency: 0.01,
            wireless_latency: 0.01,
            ckpt_bytes: 1 << 20,
            wired_bandwidth: 100.0 * (1 << 20) as f64,
            wireless_bandwidth: f64::INFINITY,
            replay_entry_cost: 0.01,
            n_mss: 5,
            has_location_vectors: false,
        }
    }
}

/// Where a crashed host's recovery inputs live at crash time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostSituation {
    /// The crashed process.
    pub proc: ProcId,
    /// Station the host restarts under (its cell at crash time).
    pub attached_mss: usize,
    /// Station whose stable storage holds the latest checkpoint (`None` =
    /// no checkpoint ever stored; the host restarts from its initial
    /// state, which every station can synthesize locally).
    pub ckpt_mss: Option<usize>,
    /// Station holding the host's message log, if any entry was written.
    pub log_mss: Option<usize>,
    /// Live log bytes to fetch for replay.
    pub log_bytes: u64,
}

/// The executed recovery of one crashed host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostRecovery {
    /// The recovered process.
    pub proc: ProcId,
    /// Wall-clock (simulated) time the host is down: query + fetches +
    /// restart push + log replay.
    pub downtime: f64,
    /// Bytes fetched over the wired backbone (checkpoint + log).
    pub wired_bytes: u64,
    /// Control messages exchanged by the recovery procedure.
    pub control_messages: u64,
    /// Logged receives re-delivered during replay.
    pub replayed_receives: usize,
}

/// The outcome of one crash event (possibly several hosts at once when a
/// station fails): per-host executed recoveries plus the event-level
/// rollback summary from the orphan-free fixpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Crash time.
    pub at: f64,
    /// Simulated time truly lost across all hosts (orphan rollbacks of
    /// survivors included).
    pub undone_time: f64,
    /// Hosts rolled back at all (crashed or orphaned).
    pub rolled_back_procs: usize,
    /// Logged receives re-delivered across all hosts.
    pub replayed_receives: usize,
    /// Simulated time re-executed (not lost) across all hosts.
    pub replayed_time: f64,
    /// The executed recovery of each crashed host.
    pub per_host: Vec<HostRecovery>,
}

/// Plans — and prices — the recovery of `hosts` crashing at `now`.
///
/// The restart line and the undone/replayed split come from
/// [`ReplayPlan::for_failure`] over the live trace and the *stable* part
/// of the message log (pending optimistic entries are invisible to
/// [`MessageLog::is_logged`], so delivered-but-unstable receives surface
/// as undone work exactly as the optimistic-logging literature predicts).
pub fn plan_recovery(
    trace: &Trace,
    log: &MessageLog,
    hosts: &[HostSituation],
    now: f64,
    params: &RecoveryParams,
) -> RecoveryOutcome {
    assert!(!hosts.is_empty(), "a crash event needs at least one host");
    let failed: Vec<ProcId> = hosts.iter().map(|h| h.proc).collect();
    let plan = ReplayPlan::for_failure(trace, log, &failed, now);
    let per_host = hosts
        .iter()
        .map(|h| price_host(h, &plan, params))
        .collect();
    RecoveryOutcome {
        at: now,
        undone_time: plan.total_undone_time(),
        rolled_back_procs: trace.procs().filter(|&p| plan.is_rolled_back(p)).count(),
        replayed_receives: plan.total_replayed_receives(),
        replayed_time: plan.total_replayed_time(),
        per_host,
    }
}

/// Composes one host's downtime from the four recovery phases.
fn price_host(h: &HostSituation, plan: &ReplayPlan, params: &RecoveryParams) -> HostRecovery {
    let mut downtime = 0.0;
    let mut msgs: u64 = 0;
    let mut wired_bytes: u64 = 0;
    // Phase 1 — locate the restart checkpoint. TP's LOC[] vector makes
    // this a local stable-storage read; the others broadcast a query to
    // every station and collect the answers.
    if params.has_location_vectors {
        downtime += params.wired_latency;
        msgs += 1;
    } else {
        downtime += 2.0 * params.wired_latency;
        msgs += 2 * params.n_mss as u64;
    }
    // Phase 2 — fetch the restart checkpoint and the message log over the
    // backbone when their residence station is not the restart cell.
    if h.ckpt_mss.is_some_and(|m| m != h.attached_mss) {
        downtime += params.wired_latency + params.ckpt_bytes as f64 / params.wired_bandwidth;
        wired_bytes += params.ckpt_bytes;
        msgs += 2;
    }
    if h.log_bytes > 0 && h.log_mss.is_some_and(|m| m != h.attached_mss) {
        downtime += params.wired_latency + h.log_bytes as f64 / params.wired_bandwidth;
        wired_bytes += h.log_bytes;
        msgs += 2;
    }
    // Phase 3 — push the restart state over the wireless link (a division
    // by the default infinite bandwidth contributes 0, the paper's
    // pure-latency model).
    downtime += params.wireless_latency + params.ckpt_bytes as f64 / params.wireless_bandwidth;
    msgs += 1;
    // Phase 4 — re-deliver the logged receives.
    let replayed_receives = plan.replayed_receives(h.proc);
    downtime += replayed_receives as f64 * params.replay_entry_cost;
    HostRecovery {
        proc: h.proc,
        downtime,
        wired_bytes,
        control_messages: msgs,
        replayed_receives,
    }
}

/// Per-run accumulator of everything failure injection produced.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryStats {
    /// Mobile-host crash events executed.
    pub mh_crashes: u64,
    /// Station crash events executed.
    pub mss_crashes: u64,
    /// Crash draws skipped because the victim was already down or
    /// disconnected (the process is re-armed, not executed).
    pub skipped_crashes: u64,
    /// Individual host recoveries executed (≥ crash events: a station
    /// crash takes down every attached host).
    pub recoveries: u64,
    /// Summed per-host downtime.
    pub total_downtime: f64,
    /// Largest single recovery's downtime.
    pub max_downtime: f64,
    /// Simulated time truly lost (undone work, survivors' orphan
    /// rollbacks included).
    pub total_undone_time: f64,
    /// Hosts rolled back across all crash events.
    pub rolled_back_procs: u64,
    /// Logged receives re-delivered during replays.
    pub replayed_receives: u64,
    /// Simulated time re-executed rather than lost.
    pub replayed_time: f64,
    /// Bytes fetched over the wired backbone by recoveries.
    pub wired_fetch_bytes: u64,
    /// Control messages exchanged by recovery procedures.
    pub control_messages: u64,
    /// Optimistic log entries that were pending (delivered but not yet
    /// stable) on a crashed host at crash time — receives lost to the
    /// flush window.
    pub unstable_lost: u64,
}

impl RecoveryStats {
    /// Folds one crash event's outcome in.
    pub fn record(&mut self, outcome: &RecoveryOutcome) {
        self.recoveries += outcome.per_host.len() as u64;
        for h in &outcome.per_host {
            self.total_downtime += h.downtime;
            self.max_downtime = self.max_downtime.max(h.downtime);
            self.wired_fetch_bytes += h.wired_bytes;
            self.control_messages += h.control_messages;
        }
        self.total_undone_time += outcome.undone_time;
        self.rolled_back_procs += outcome.rolled_back_procs as u64;
        self.replayed_receives += outcome.replayed_receives as u64;
        self.replayed_time += outcome.replayed_time;
    }

    /// Mean downtime per executed recovery (0 when none ran).
    pub fn mean_downtime(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.total_downtime / self.recoveries as f64
        }
    }

    /// Fraction of host-time the population was up: `1 − downtime /
    /// (n_hosts × elapsed)`, clamped to `[0, 1]`.
    pub fn availability(&self, n_hosts: usize, elapsed: f64) -> f64 {
        if n_hosts == 0 || elapsed <= 0.0 {
            return 1.0;
        }
        (1.0 - self.total_downtime / (n_hosts as f64 * elapsed)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality::trace::{CkptKind, MsgId, TraceBuilder};

    #[test]
    fn disabled_classes_draw_nothing() {
        let rng = SimRng::new(7);
        let mut m = FailureModel::new(0.0, 0.0, &rng, 4, 2);
        assert!(!m.mh_crashes() && !m.mss_crashes());
        assert_eq!(m.next_mh_crash(0, 10.0), None);
        assert_eq!(m.next_mss_crash(0, 10.0), None);
    }

    #[test]
    fn crash_draws_are_deterministic_and_per_entity() {
        let rng = SimRng::new(42);
        let mut a = FailureModel::new(500.0, 2000.0, &rng, 3, 2);
        let mut b = FailureModel::new(500.0, 2000.0, &rng, 3, 2);
        for i in 0..3 {
            assert_eq!(a.next_mh_crash(i, 0.0), b.next_mh_crash(i, 0.0));
        }
        assert_eq!(a.next_mss_crash(1, 5.0), b.next_mss_crash(1, 5.0));
        // Host 2's first draw is independent of how many draws host 0 made.
        let mut c = FailureModel::new(500.0, 2000.0, &rng, 3, 2);
        let mut d = FailureModel::new(500.0, 2000.0, &rng, 3, 2);
        for _ in 0..10 {
            c.next_mh_crash(0, 0.0);
        }
        assert_eq!(c.next_mh_crash(2, 0.0), d.next_mh_crash(2, 0.0));
        // Draws are strictly after `now`.
        assert!(a.next_mh_crash(0, 123.0).unwrap() > 123.0);
    }

    /// Two hosts; host 0 checkpoints at t=5, receives a logged message at
    /// t=6, then crashes at t=10.
    fn crash_fixture() -> (Trace, MessageLog) {
        let mut b = TraceBuilder::new(2);
        b.checkpoint(ProcId(0), 5.0, 1, CkptKind::CellSwitch);
        b.send(MsgId(1), ProcId(1), ProcId(0), 5.5);
        b.recv(MsgId(1), 6.0);
        let mut log = MessageLog::new(2);
        log.append(ProcId(0), MsgId(1), 6.0, 64);
        (b.finish(), log)
    }

    #[test]
    fn downtime_composes_query_fetch_push_and_replay() {
        let (trace, log) = crash_fixture();
        let params = RecoveryParams {
            wired_latency: 0.5,
            wireless_latency: 0.25,
            ckpt_bytes: 100,
            wired_bandwidth: 100.0,
            wireless_bandwidth: f64::INFINITY,
            replay_entry_cost: 2.0,
            n_mss: 3,
            has_location_vectors: false,
        };
        let situation = HostSituation {
            proc: ProcId(0),
            attached_mss: 1,
            ckpt_mss: Some(0), // remote: fetch over the backbone
            log_mss: Some(1),  // local: no fetch
            log_bytes: 64,
        };
        let out = plan_recovery(&trace, &log, &[situation], 10.0, &params);
        assert_eq!(out.per_host.len(), 1);
        let h = &out.per_host[0];
        // query 2·0.5 + ckpt fetch (0.5 + 100/100) + restart push 0.25
        // + replay 1 × 2.0
        assert!((h.downtime - (1.0 + 1.5 + 0.25 + 2.0)).abs() < 1e-12);
        assert_eq!(h.wired_bytes, 100);
        assert_eq!(h.replayed_receives, 1);
        // The logged receive replays: nothing after the t=5 checkpoint is
        // lost except the 6..10 tail? No — the frontier is INFINITY (all
        // receives logged), so the whole 5..10 span replays and nothing
        // is undone.
        assert_eq!(out.undone_time, 0.0);
        assert!((out.replayed_time - 5.0).abs() < 1e-12);
        assert_eq!(out.rolled_back_procs, 1);
    }

    #[test]
    fn location_vectors_cut_the_query_and_local_state_skips_fetches() {
        let (trace, log) = crash_fixture();
        let params = RecoveryParams {
            wired_latency: 0.5,
            wireless_latency: 0.25,
            replay_entry_cost: 0.0,
            has_location_vectors: true,
            ..RecoveryParams::default()
        };
        let situation = HostSituation {
            proc: ProcId(0),
            attached_mss: 0,
            ckpt_mss: Some(0),
            log_mss: Some(0),
            log_bytes: 64,
        };
        let out = plan_recovery(&trace, &log, &[situation], 10.0, &params);
        let h = &out.per_host[0];
        // Local read (0.5) + wireless push (0.25) only.
        assert!((h.downtime - 0.75).abs() < 1e-12);
        assert_eq!(h.wired_bytes, 0);
        assert_eq!(h.control_messages, 2);
    }

    #[test]
    fn unlogged_receive_becomes_undone_work() {
        let mut b = TraceBuilder::new(2);
        b.checkpoint(ProcId(0), 5.0, 1, CkptKind::CellSwitch);
        b.send(MsgId(1), ProcId(1), ProcId(0), 5.5);
        b.recv(MsgId(1), 6.0);
        let trace = b.finish();
        let log = MessageLog::new(2); // nothing logged
        let situation = HostSituation {
            proc: ProcId(0),
            attached_mss: 0,
            ckpt_mss: Some(0),
            log_mss: None,
            log_bytes: 0,
        };
        let out = plan_recovery(&trace, &log, &[situation], 10.0, &RecoveryParams::default());
        // Replay stops at the unlogged t=6 receive: 5..6 replays, 6..10 is
        // gone.
        assert!((out.undone_time - 4.0).abs() < 1e-12);
        assert!((out.replayed_time - 1.0).abs() < 1e-12);
        assert_eq!(out.replayed_receives, 0);
    }

    #[test]
    fn stats_accumulate_and_derive() {
        let (trace, log) = crash_fixture();
        let situation = HostSituation {
            proc: ProcId(0),
            attached_mss: 0,
            ckpt_mss: Some(1),
            log_mss: Some(1),
            log_bytes: 64,
        };
        let out = plan_recovery(&trace, &log, &[situation], 10.0, &RecoveryParams::default());
        let mut stats = RecoveryStats::default();
        stats.mh_crashes += 1;
        stats.record(&out);
        assert_eq!(stats.recoveries, 1);
        assert!(stats.total_downtime > 0.0);
        assert_eq!(stats.max_downtime, stats.total_downtime);
        assert_eq!(stats.wired_fetch_bytes, (1 << 20) + 64);
        assert!((stats.mean_downtime() - stats.total_downtime).abs() < 1e-12);
        let avail = stats.availability(2, 100.0);
        assert!(avail < 1.0 && avail > 0.0);
        assert_eq!(RecoveryStats::default().availability(2, 100.0), 1.0);
        assert_eq!(RecoveryStats::default().mean_downtime(), 0.0);
    }
}
