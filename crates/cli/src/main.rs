//! `mck` — command-line front end for the mobile-checkpointing simulator.
//!
//! ```text
//! mck run   [--protocol QBC] [--t-switch 1000] [--p-switch 1.0] [--h 0]
//!           [--horizon 10000] [--seed 1] [--ps 0.4] [--dup 0]
//! mck sweep [--protocol QBC] [--t-switch-list 100,...,10000] [--p-switch ..]
//!           [--h ..] [--reps 5] [--seed 1] [--csv]
//! mck fig <1..6> [--reps 5] [--seed 1] [--csv]
//! mck claims [--reps 5] [--seed 1]
//! mck classes [--reps 3] [--seed 1]
//! mck rollback [--reps 2] [--seed 1] [--logging off|pessimistic|optimistic] [--out-dir DIR]
//! mck storage [--reps 3] [--seed 1]
//! mck recovery-time [--reps 2] [--seed 1]
//! mck crash [--reps 2] [--seed 1] [--t-switch-list 500,2000] [--out-dir DIR]
//! mck topologies [--reps 3] [--seed 1]
//! mck list
//! ```
//!
//! `run`, `sweep`, and `fig` additionally take `--scenario FILE`: a
//! `mck.scenario/v1` JSON file (see `scenarios/`) that swaps the cell
//! topology, mobility model, and traffic model and may override scalar
//! parameters. Explicit flags still win over the scenario.

mod args;

use args::{ArgError, Args};
use mck::experiments::{self, FigureSpec, T_SWITCH_SWEEP};
use mck::prelude::*;
use mck::table::{fmt_estimate, Table};
use simkit::json::Json;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&raw) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

fn usage() -> &'static str {
    "usage:\n  mck run     [--protocol P] [--t-switch T] [--p-switch P] [--h H] [--horizon T] [--seed S] [--ps P] [--dup P]\n              [--logging off|pessimistic|optimistic] [--flush-latency T]\n              [--fail-mtbf T] [--fail-mss-mtbf T]\n              [--trace trace.jsonl] [--metrics artifact.json] [--profile] [--progress]\n  mck profile [run flags] [--out PROFILE.json] [--folded out.folded] [--prom out.prom]\n  mck sweep   [--protocol P] [--t-switch-list a,b,c] [--p-switch P] [--h H] [--reps R] [--seed S] [--csv] [--out-dir DIR]\n  mck fig N   [--reps R] [--seed S] [--csv] [--out-dir DIR]      (N in 1..6, or 'all')\n  mck claims  [--reps R] [--seed S]\n  mck classes [--reps R] [--seed S]\n  mck rollback [--reps R] [--seed S] [--logging off|pessimistic|optimistic] [--out-dir DIR]\n  mck crash   [--reps R] [--seed S] [--t-switch-list a,b,c] [--out-dir DIR]\n  mck check   [--protocol P] [--mh N] [--mss M] [--horizon T] [--t-switch T] [--seed S]\n              [--max-states K] [--mutate] [--out MC.json] | --replay MC.json\n  mck inspect <artifact.json|scenario.json|cache-dir> [--deterministic]\n  mck serve   [--addr HOST] [--port N] [--cache-dir DIR] [--max-entries N] [--queue-depth N] [--max-requests N]\n  mck list\nglobal: --jobs N (worker threads; default MCK_JOBS or all cores)\n        --cache-dir DIR (run/fig: content-addressed result cache; warm\n                         requests replay stored artifact bytes verbatim)\n        --queue heap|calendar|parallel (pending-event set; results are identical;\n                         'parallel' = conservative cell-partitioned workers, run/profile only)\n        --par-workers N (worker count for --queue parallel; default --jobs)\n        --pb-codec dense|rle (TP vector piggyback wire codec; trajectory is identical)\n        --scenario FILE (mck.scenario/v1 environment + parameter overrides;\n                         explicit flags still win; run/sweep/fig)\nprotocols: TP, BCS, QBC, UNCOORD"
}

const KNOWN: &[&str] = &[
    "protocol",
    "t-switch",
    "t-switch-list",
    "p-switch",
    "h",
    "horizon",
    "seed",
    "reps",
    "ps",
    "dup",
    "trace",
    "metrics",
    "logging",
    "flush-latency",
    "fail-mtbf",
    "fail-mss-mtbf",
    "out-dir",
    "out",
    "folded",
    "prom",
    "jobs",
    "queue",
    "par-workers",
    "pb-codec",
    "scenario",
    "cache-dir",
    "addr",
    "port",
    "max-entries",
    "queue-depth",
    "max-requests",
    "mh",
    "mss",
    "max-states",
    "replay",
];
const BOOLEAN: &[&str] = &["csv", "profile", "progress", "deterministic", "mutate"];

/// Routes a raw command line to a handler, returning its printable output.
fn dispatch(raw: &[String]) -> Result<String, ArgError> {
    let args = Args::parse(raw, KNOWN, BOOLEAN)?;
    // --jobs applies to every experiment command; 0 (the default) keeps the
    // MCK_JOBS / available-parallelism resolution.
    set_jobs(args.get_usize("jobs", 0)?);
    match args.positional(0) {
        Some("run") => cmd_run(&args),
        Some("profile") => cmd_profile(&args),
        Some("sweep") => cmd_sweep(&args),
        Some("fig") => cmd_fig(&args),
        Some("claims") => cmd_claims(&args),
        Some("classes") => cmd_classes(&args),
        Some("rollback") => cmd_rollback(&args),
        Some("storage") => cmd_storage(&args),
        Some("recovery-time") => cmd_recovery_time(&args),
        Some("crash") => cmd_crash(&args),
        Some("topologies") => cmd_topologies(&args),
        Some("contention") => cmd_contention(&args),
        Some("check") => cmd_check(&args),
        Some("inspect") => cmd_inspect(&args),
        Some("serve") => cmd_serve(&args),
        Some("list") => Ok(cmd_list()),
        Some(other) => Err(ArgError(format!("unknown command '{other}'"))),
        None => Err(ArgError("no command given".into())),
    }
}

fn protocol_of(args: &Args) -> Result<ProtocolChoice, ArgError> {
    let name = args.get("protocol").unwrap_or("QBC");
    CicKind::parse(name)
        .map(ProtocolChoice::Cic)
        .ok_or_else(|| ArgError(format!("unknown protocol '{name}'")))
}

fn queue_of(args: &Args) -> Result<simkit::event::QueueBackend, ArgError> {
    match args.get("queue") {
        None => Ok(simkit::event::QueueBackend::default()),
        Some(name) => simkit::event::QueueBackend::parse(name).ok_or_else(|| {
            ArgError(format!("unknown queue backend '{name}' (heap|calendar|parallel)"))
        }),
    }
}

/// `--queue parallel` selects the conservative cell-partitioned backend
/// (run and profile only); returns the resolved worker count, `None` for
/// the serial backends. Each parallel worker replica runs a heap
/// scheduler, so the config's `queue` field stays `Heap` — which also
/// means cached artifacts are shared with serial runs (the backends are
/// byte-identical by construction).
fn parallel_of(args: &Args) -> Result<Option<usize>, ArgError> {
    if args.get("queue") != Some("parallel") {
        if args.get("par-workers").is_some() {
            return Err(ArgError("--par-workers requires --queue parallel".into()));
        }
        return Ok(None);
    }
    let n = args.get_usize("par-workers", 0)?;
    Ok(Some(if n == 0 { jobs() } else { n }))
}

/// Experiment grids (`sweep`, `fig`) already parallelize across
/// replications via the job pool; intra-run parallelism is redundant
/// there and unsupported.
fn reject_parallel(args: &Args, cmd: &str) -> Result<(), ArgError> {
    if args.get("queue") == Some("parallel") {
        return Err(ArgError(format!(
            "--queue parallel applies to 'run' and 'profile' only; \
             '{cmd}' already parallelizes across replications (--jobs N)"
        )));
    }
    Ok(())
}

fn logging_of(args: &Args) -> Result<LoggingMode, ArgError> {
    LoggingMode::parse(args.get("logging").unwrap_or("off")).map_err(ArgError)
}

/// Loads the `--scenario` file, if given.
fn scenario_of(args: &Args) -> Result<Option<Scenario>, ArgError> {
    match args.get("scenario") {
        None => Ok(None),
        Some(path) => Scenario::load(std::path::Path::new(path))
            .map(Some)
            .map_err(|e| ArgError(format!("--scenario {path}: {e}"))),
    }
}

fn pb_codec_of(args: &Args) -> Result<PbCodec, ArgError> {
    match args.get("pb-codec") {
        None => Ok(PbCodec::default()),
        Some(name) => PbCodec::parse(name)
            .ok_or_else(|| ArgError(format!("unknown piggyback codec '{name}' (dense|rle)"))),
    }
}

fn config_of(args: &Args) -> Result<SimConfig, ArgError> {
    // Precedence: defaults, then the scenario file, then explicit flags.
    let mut cfg = SimConfig::default();
    if let Some(sc) = scenario_of(args)? {
        cfg.apply_scenario(&sc);
    }
    cfg.protocol = protocol_of(args)?;
    // `--queue parallel` is a backend-dispatch choice, not a pending-event
    // set: the worker replicas each run the (default) heap scheduler.
    cfg.queue = if parallel_of(args)?.is_some() {
        simkit::event::QueueBackend::Heap
    } else {
        queue_of(args)?
    };
    cfg.pb_codec = pb_codec_of(args)?;
    cfg.logging = logging_of(args)?;
    cfg.t_switch = args.get_f64("t-switch", cfg.t_switch)?;
    cfg.p_switch = args.get_f64("p-switch", cfg.p_switch)?;
    cfg.heterogeneity = args.get_f64("h", cfg.heterogeneity)?;
    cfg.horizon = args.get_f64("horizon", cfg.horizon)?;
    cfg.seed = args.get_u64("seed", cfg.seed)?;
    cfg.p_send = args.get_f64("ps", cfg.p_send)?;
    cfg.dup_prob = args.get_f64("dup", cfg.dup_prob)?;
    cfg.flush_latency = args.get_f64("flush-latency", cfg.flush_latency)?;
    cfg.fail_mtbf = args.get_f64("fail-mtbf", cfg.fail_mtbf)?;
    cfg.fail_mss_mtbf = args.get_f64("fail-mss-mtbf", cfg.fail_mss_mtbf)?;
    // Typed validation up front: the CLI reports bad inputs as errors
    // instead of tripping the panicking guard inside the simulation.
    cfg.check().map_err(|e| ArgError(e.to_string()))?;
    Ok(cfg)
}

fn cmd_run(args: &Args) -> Result<String, ArgError> {
    if let Some(dir) = args.get("cache-dir") {
        return cmd_run_cached(args, dir);
    }
    let cfg = config_of(args)?;
    let trace_path = args.get("trace").map(std::path::PathBuf::from);
    let metrics_path = args.get("metrics").map(std::path::PathBuf::from);

    let mut instr = Instrumentation::off();
    if let Some(path) = &trace_path {
        let sink = simkit::trace::JsonlSink::create(path)
            .map_err(|e| ArgError(format!("--trace {}: {e}", path.display())))?;
        instr.tracer = simkit::trace::Tracer::disabled().with_jsonl(sink);
    }
    if metrics_path.is_some() {
        instr.metrics = true;
    }
    // Observation-only overlays: none of these change a single byte of the
    // report or any artifact (CI pins this).
    instr.profile = args.flag("profile");
    instr.progress = args.flag("progress");

    let r = match parallel_of(args)? {
        Some(workers) => pardes::run(cfg.clone(), workers, instr),
        None => Simulation::run_with(cfg.clone(), instr),
    };
    let mut out = r.summary_table().render();
    if let Some(path) = &metrics_path {
        let art = mck::artifact::run_artifact(&cfg, &r);
        mck::artifact::write(path, &art)
            .map_err(|e| ArgError(format!("--metrics {}: {e}", path.display())))?;
        out += &format!("metrics artifact -> {}\n", path.display());
    }
    if let Some(path) = &trace_path {
        out += &format!("trace ({} events) -> {}\n", r.trace_emitted, path.display());
    }
    // Wall-clock timing goes to stderr so stdout stays deterministic.
    if let Some(timing) = r.timing_summary() {
        eprintln!("profile: {timing}");
    }
    Ok(out)
}

/// `mck run --cache-dir DIR`: the content-addressed path. The run's
/// `mck.run/v1` artifact is stored under its canonical key and replayed
/// byte-for-byte on the next identical request, so stdout (the artifact
/// summary) is the same cold or warm; the hit/miss disposition — host-local
/// state, like wall-clock — goes to stderr.
fn cmd_run_cached(args: &Args, dir: &str) -> Result<String, ArgError> {
    if args.get("trace").is_some() {
        return Err(ArgError(
            "--trace cannot be combined with --cache-dir (a cache hit executes no events to trace)"
                .into(),
        ));
    }
    let cfg = config_of(args)?;
    let mut cache = servekit::cache::RunCache::open(std::path::Path::new(dir), 4096)
        .map_err(|e| ArgError(format!("--cache-dir {dir}: {e}")))?;
    let key = servekit::key::run_key(&cfg);
    let (bytes, disposition) = match cache.get(&key) {
        Some(bytes) => (bytes, "hit"),
        None => {
            // Canonical artifact instrumentation: the same metrics-on run the
            // server performs, so CLI and service share cache entries.
            let instr = Instrumentation {
                metrics: true,
                profile: args.flag("profile"),
                progress: args.flag("progress"),
                ..Instrumentation::off()
            };
            let r = match parallel_of(args)? {
                Some(workers) => pardes::run(cfg.clone(), workers, instr),
                None => Simulation::run_with(cfg.clone(), instr),
            };
            let bytes =
                servekit::server::artifact_bytes(&mck::artifact::run_artifact(&cfg, &r));
            cache
                .put(&key, mck::artifact::RUN_SCHEMA, &bytes)
                .map_err(|e| ArgError(format!("--cache-dir {dir}: {e}")))?;
            (bytes, "miss")
        }
    };
    eprintln!("cache {disposition} {key} ({dir})");
    let v = simkit::json::parse(&bytes)
        .map_err(|e| ArgError(format!("cached artifact {key}: {e}")))?;
    let mut out = mck::artifact::describe(&v).map_err(ArgError)?;
    if let Some(path) = args.get("metrics") {
        // The stored bytes verbatim — identical to what `mck run --metrics`
        // writes without the cache.
        std::fs::write(path, &bytes).map_err(|e| ArgError(format!("--metrics {path}: {e}")))?;
        out += &format!("metrics artifact -> {path}\n");
    }
    Ok(out)
}

/// `mck profile`: one instrumented run emitting the `mck.profile/v1`
/// artifact — per-event-type and per-phase span attribution with every
/// wall-clock quantity quarantined under `timing` — plus optional
/// folded-stack (`--folded`, flamegraph-ready) and Prometheus text
/// (`--prom`) renditions.
fn cmd_profile(args: &Args) -> Result<String, ArgError> {
    let cfg = config_of(args)?;
    let out_path = std::path::PathBuf::from(args.get("out").unwrap_or("PROFILE.json"));
    let instr = Instrumentation {
        metrics: true,
        profile: true,
        spans: true,
        progress: args.flag("progress"),
        ..Instrumentation::off()
    };
    let r = match parallel_of(args)? {
        Some(workers) => pardes::run(cfg.clone(), workers, instr),
        None => Simulation::run_with(cfg.clone(), instr),
    };
    let art = mck::artifact::profile_artifact(&cfg, &r);
    mck::artifact::write(&out_path, &art)
        .map_err(|e| ArgError(format!("--out {}: {e}", out_path.display())))?;
    let mut out = format!("profile artifact -> {}\n", out_path.display());
    let spans = r.spans.as_ref().expect("profiled run has spans");
    if let Some(path) = args.get("folded") {
        std::fs::write(path, spans.to_folded())
            .map_err(|e| ArgError(format!("--folded {path}: {e}")))?;
        out += &format!("folded stacks -> {path}\n");
    }
    if let Some(path) = args.get("prom") {
        std::fs::write(path, r.metrics.to_prometheus())
            .map_err(|e| ArgError(format!("--prom {path}: {e}")))?;
        out += &format!("prometheus exposition -> {path}\n");
    }
    if let Some(timing) = r.timing_summary() {
        eprintln!("profile: {timing}");
    }
    Ok(out)
}

fn cmd_inspect(args: &Args) -> Result<String, ArgError> {
    let arg = args
        .positional(1)
        .ok_or_else(|| ArgError("inspect needs an artifact path".into()))?;
    let mut path = std::path::PathBuf::from(arg);
    if path.is_dir() {
        // A cache directory: inspect its index file.
        path = servekit::cache::RunCache::index_path(&path);
    }
    let v = mck::artifact::read(&path).map_err(ArgError)?;
    if args.flag("deterministic") {
        // The separation-rule view: the artifact with every `timing` member
        // removed, byte-stable across hosts for a given config + seed. CI
        // diffs this directly instead of stripping fields by hand.
        mck::artifact::validate(&v).map_err(ArgError)?;
        return Ok(format!("{}\n", mck::artifact::deterministic_view(&v).to_pretty()));
    }
    let schema = mck::artifact::validate(&v).map_err(ArgError)?;
    if schema == mck::artifact::CACHE_INDEX_SCHEMA {
        // The CLI view adds an age column from the object files' mtimes —
        // filesystem state the deterministic core describe can't touch.
        return describe_cache_index(&path, &v);
    }
    let mut out = String::new();
    if let Some(header) = cache_entry_header(&path) {
        out += &header;
    }
    out += &mck::artifact::describe(&v).map_err(ArgError)?;
    Ok(out)
}

/// Renders a `mck.cache_index/v1` with one row per entry: key prefix,
/// artifact kind, byte size, and age (from the object file's mtime).
fn describe_cache_index(index_path: &std::path::Path, v: &Json) -> Result<String, ArgError> {
    let dir = index_path.parent().unwrap_or(std::path::Path::new("."));
    let entries = v
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| ArgError("cache index has no entries array".into()))?;
    let total: u64 = entries
        .iter()
        .filter_map(|e| e.get("bytes").and_then(Json::as_u64))
        .sum();
    let mut out = format!(
        "mck.cache_index/v1: {} entries, {} bytes ({})\n",
        entries.len(),
        total,
        dir.display()
    );
    let mut table = Table::new(vec!["key", "kind", "bytes", "age"]);
    for e in entries {
        let key = e.get("key").and_then(Json::as_str).unwrap_or("?");
        let kind = e.get("kind").and_then(Json::as_str).unwrap_or("?");
        let bytes = e.get("bytes").and_then(Json::as_u64).unwrap_or(0);
        let object = dir.join("objects").join(format!("{key}.json"));
        table.push_row(vec![
            key.chars().take(16).collect(),
            kind.to_string(),
            bytes.to_string(),
            file_age(&object).unwrap_or_else(|| "?".into()),
        ]);
    }
    out += &table.render();
    Ok(out)
}

/// For a file inside a cache's `objects/` directory, a one-line header
/// giving its key, byte size, and age before the ordinary describe output.
fn cache_entry_header(path: &std::path::Path) -> Option<String> {
    let parent = path.parent()?;
    if parent.file_name()? != "objects" {
        return None;
    }
    let key = path.file_stem()?.to_str()?;
    let bytes = std::fs::metadata(path).ok()?.len();
    let age = file_age(path).unwrap_or_else(|| "?".into());
    Some(format!("cache entry {key} ({bytes} bytes, age {age})\n"))
}

/// Humanized time since a file's mtime: `42s`, `7m`, `3h`, `2d`.
fn file_age(path: &std::path::Path) -> Option<String> {
    let mtime = std::fs::metadata(path).ok()?.modified().ok()?;
    let secs = std::time::SystemTime::now()
        .duration_since(mtime)
        .unwrap_or_default()
        .as_secs();
    Some(match secs {
        0..=59 => format!("{secs}s"),
        60..=3599 => format!("{}m", secs / 60),
        3600..=86399 => format!("{}h", secs / 3600),
        _ => format!("{}d", secs / 86400),
    })
}

/// `mck serve`: binds the servekit HTTP server and blocks in its accept
/// loop until `POST /shutdown` (or `--max-requests` for bounded smokes).
/// The bound address prints and flushes before blocking so scripts can
/// parse it even with `--port 0`.
fn cmd_serve(args: &Args) -> Result<String, ArgError> {
    let host = args.get("addr").unwrap_or("127.0.0.1");
    let port = args.get_u64("port", 7199)?;
    let max_entries = args.get_usize("max-entries", 4096)?;
    if max_entries == 0 {
        return Err(ArgError("--max-entries must be at least 1".into()));
    }
    let queue_depth = args.get_usize("queue-depth", 4)?;
    if queue_depth == 0 {
        return Err(ArgError("--queue-depth must be at least 1".into()));
    }
    let opts = servekit::server::ServeOptions {
        addr: format!("{host}:{port}"),
        cache_dir: std::path::PathBuf::from(args.get("cache-dir").unwrap_or(".mck-cache")),
        max_entries,
        queue_depth,
        max_requests: match args.get_u64("max-requests", 0)? {
            0 => None,
            n => Some(n),
        },
        ..servekit::server::ServeOptions::default()
    };
    let server = servekit::server::Server::bind(&opts)
        .map_err(|e| ArgError(format!("serve: bind {}: {e}", opts.addr)))?;
    let addr = server
        .local_addr()
        .map_err(|e| ArgError(format!("serve: {e}")))?;
    println!("mck serve listening on http://{addr}");
    println!(
        "cache {} ({} max entries, queue depth {})",
        opts.cache_dir.display(),
        opts.max_entries,
        opts.queue_depth
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    let s = server.run().map_err(|e| ArgError(format!("serve: {e}")))?;
    Ok(format!(
        "drained: {} requests ({} hits, {} misses, {} coalesced, {} rejected)\n",
        s.requests, s.hits, s.misses, s.coalesced, s.rejected
    ))
}

fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    reject_parallel(args, "sweep")?;
    let reps = args.get_usize("reps", 3)?;
    let seed = args.get_u64("seed", 1)?;
    let ts = args.get_f64_list("t-switch-list", &T_SWITCH_SWEEP)?;
    let base = config_of(args)?;
    // The whole grid (points × replications) runs as one flattened job
    // list across the pool; the wall clock therefore measures real sweep
    // throughput and lands in the artifact.
    let t0 = std::time::Instant::now();
    let points = experiments::run_sweep(&base, &ts, seed, reps);
    let timing = mck::artifact::SweepTiming {
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
        runs: (ts.len() * reps) as u64,
        jobs: jobs(),
    };
    let mut table = Table::new(vec!["T_switch", "N_tot", "basic", "forced"]);
    for (t, s) in &points {
        table.push_row(vec![
            format!("{t:.0}"),
            fmt_estimate(s.n_tot.mean, s.n_tot.ci95),
            fmt_estimate(s.n_basic.mean, s.n_basic.ci95),
            fmt_estimate(s.n_forced.mean, s.n_forced.ci95),
        ]);
    }
    let mut out = render(args, &table, &format!("{} sweep", base.protocol.name()));
    if let Some(dir) = args.get("out-dir") {
        let path = std::path::Path::new(dir)
            .join(format!("SWEEP_{}.json", base.protocol.name()));
        let art = mck::artifact::sweep_artifact(&base, seed, reps, &points, Some(timing));
        mck::artifact::write(&path, &art)
            .map_err(|e| ArgError(format!("--out-dir {}: {e}", path.display())))?;
        out += &format!("sweep artifact -> {}\n", path.display());
    }
    Ok(out)
}

fn cmd_fig(args: &Args) -> Result<String, ArgError> {
    reject_parallel(args, "fig")?;
    let reps = args.get_usize("reps", 5)?;
    let seed = args.get_u64("seed", 1)?;
    let which = args
        .positional(1)
        .ok_or_else(|| ArgError("fig needs a figure number (1-6) or 'all'".into()))?;
    let ids: Vec<usize> = if which == "all" {
        (1..=6).collect()
    } else {
        vec![which
            .parse()
            .map_err(|_| ArgError(format!("'{which}' is not a figure number")))?]
    };
    for &id in &ids {
        if !(1..=6).contains(&id) {
            return Err(ArgError(format!("the paper has figures 1-6, not {id}")));
        }
    }
    if let Some(dir) = args.get("cache-dir") {
        return cmd_fig_cached(args, &ids, dir);
    }
    // All requested figures execute as one flattened job list, so `fig all`
    // keeps every worker busy across figure boundaries.
    let specs: Vec<FigureSpec> = ids.iter().map(|&id| experiments::figure(id)).collect();
    let scenario = scenario_of(args)?;
    let results = experiments::run_figures_scenario(&specs, seed, reps, scenario.as_ref());
    let mut out = String::new();
    for (id, res) in ids.iter().copied().zip(results) {
        let spec = &res.spec;
        out += &format!("{}\n", spec.caption());
        out += &render(args, &res.table(), "");
        if let Some(dir) = args.get("out-dir") {
            let path = std::path::Path::new(dir).join(format!("FIG{id}.json"));
            let art = mck::artifact::figure_artifact(&res, seed, reps);
            mck::artifact::write(&path, &art)
                .map_err(|e| ArgError(format!("--out-dir {}: {e}", path.display())))?;
            out += &format!("figure artifact -> {}\n", path.display());
        }
        out += "\n";
    }
    Ok(out)
}

/// `mck fig --cache-dir DIR`: figures are cached one entry per figure, so
/// `fig all` can be partially warm. Cold figures compute individually
/// (losing the cross-figure job batching — the price of per-figure keys),
/// and stdout is the artifact summary, identical cold or warm.
fn cmd_fig_cached(args: &Args, ids: &[usize], dir: &str) -> Result<String, ArgError> {
    let reps = args.get_usize("reps", 5)?;
    let seed = args.get_u64("seed", 1)?;
    let scenario = scenario_of(args)?;
    let mut cache = servekit::cache::RunCache::open(std::path::Path::new(dir), 4096)
        .map_err(|e| ArgError(format!("--cache-dir {dir}: {e}")))?;
    let mut out = String::new();
    for &id in ids {
        let key = servekit::key::figure_key(id, seed, reps, scenario.as_ref());
        let (bytes, disposition) = match cache.get(&key) {
            Some(bytes) => (bytes, "hit"),
            None => {
                let spec = experiments::figure(id);
                let res = experiments::run_figures_scenario(&[spec], seed, reps, scenario.as_ref())
                    .pop()
                    .expect("one result per requested figure");
                let bytes = servekit::server::artifact_bytes(&mck::artifact::figure_artifact(
                    &res, seed, reps,
                ));
                cache
                    .put(&key, mck::artifact::FIGURE_SCHEMA, &bytes)
                    .map_err(|e| ArgError(format!("--cache-dir {dir}: {e}")))?;
                (bytes, "miss")
            }
        };
        eprintln!("cache {disposition} {key} ({dir})");
        let v = simkit::json::parse(&bytes)
            .map_err(|e| ArgError(format!("cached artifact {key}: {e}")))?;
        out += &mck::artifact::describe(&v).map_err(ArgError)?;
        if let Some(odir) = args.get("out-dir") {
            let path = std::path::Path::new(odir).join(format!("FIG{id}.json"));
            if let Some(parent) = path.parent() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| ArgError(format!("--out-dir {}: {e}", path.display())))?;
            }
            std::fs::write(&path, &bytes)
                .map_err(|e| ArgError(format!("--out-dir {}: {e}", path.display())))?;
            out += &format!("figure artifact -> {}\n", path.display());
        }
        out += "\n";
    }
    Ok(out)
}

fn cmd_claims(args: &Args) -> Result<String, ArgError> {
    let reps = args.get_usize("reps", 5)?;
    let seed = args.get_u64("seed", 1)?;
    // One flattened batch across all four claim figures.
    let specs: Vec<FigureSpec> = [1, 2, 5, 6].iter().map(|&n| experiments::figure(n)).collect();
    let figs = experiments::run_figures(&specs, seed, reps);
    let mut table = Table::new(vec!["claim", "paper", "measured", "holds"]);
    for c in experiments::claims(&figs) {
        table.push_row(vec![
            c.id.to_string(),
            c.paper.to_string(),
            c.measured,
            if c.holds { "yes" } else { "NO" }.to_string(),
        ]);
    }
    Ok(table.render())
}

fn cmd_classes(args: &Args) -> Result<String, ArgError> {
    let reps = args.get_usize("reps", 3)?;
    let seed = args.get_u64("seed", 1)?;
    let rows = experiments::ext_classes(seed, reps);
    let mut table = Table::new(vec![
        "protocol",
        "N_tot",
        "ctl msgs",
        "searches",
        "piggyback B",
        "blocked sends",
    ]);
    for r in rows {
        table.push_row(vec![
            r.protocol,
            format!("{:.0}", r.n_tot),
            format!("{:.0}", r.control_msgs),
            format!("{:.0}", r.searches),
            format!("{:.0}", r.piggyback_bytes),
            format!("{:.0}", r.blocked_sends),
        ]);
    }
    Ok(render(args, &table, "protocol classes"))
}

fn cmd_storage(args: &Args) -> Result<String, ArgError> {
    let reps = args.get_usize("reps", 3)?;
    let seed = args.get_u64("seed", 1)?;
    let rows = experiments::ext_storage(seed, reps);
    let mut table = Table::new(vec!["protocol", "ckpts taken", "mean retained", "max retained"]);
    for r in rows {
        table.push_row(vec![
            r.protocol,
            format!("{:.0}", r.taken),
            format!("{:.1}", r.mean_retained),
            format!("{:.0}", r.max_retained),
        ]);
    }
    Ok(render(args, &table, "stable-storage occupancy after GC"))
}

fn cmd_recovery_time(args: &Args) -> Result<String, ArgError> {
    let reps = args.get_usize("reps", 2)?;
    let seed = args.get_u64("seed", 1)?;
    let rows = experiments::ext_recovery_time(seed, reps);
    let mut table = Table::new(vec![
        "protocol",
        "mean waves",
        "max waves",
        "latency",
        "ctl msgs",
    ]);
    for r in rows {
        table.push_row(vec![
            r.protocol,
            format!("{:.2}", r.mean_waves),
            r.max_waves.to_string(),
            format!("{:.4}", r.mean_latency),
            format!("{:.0}", r.mean_msgs),
        ]);
    }
    Ok(render(args, &table, "recovery-line collection cost"))
}

fn cmd_contention(args: &Args) -> Result<String, ArgError> {
    let reps = args.get_usize("reps", 3)?;
    let seed = args.get_u64("seed", 1)?;
    let rows = experiments::ext_contention(seed, reps);
    let mut table = Table::new(vec!["protocol", "N_tot", "channel util", "queueing", "ckpt MiB"]);
    for r in rows {
        table.push_row(vec![
            r.protocol,
            format!("{:.0}", r.n_tot),
            format!("{:.1}%", r.utilization * 100.0),
            format!("{:.1}", r.queueing_delay),
            format!("{:.1}", r.ckpt_mib),
        ]);
    }
    Ok(render(args, &table, "wireless channel contention"))
}

fn cmd_topologies(args: &Args) -> Result<String, ArgError> {
    let reps = args.get_usize("reps", 3)?;
    let seed = args.get_u64("seed", 1)?;
    let rows = experiments::ext_topologies(seed, reps);
    let mut table = Table::new(vec!["cell graph", "TP", "BCS", "QBC"]);
    for r in rows {
        let mut row = vec![r.graph.to_string()];
        for (_, e) in &r.n_tot {
            row.push(fmt_estimate(e.mean, e.ci95));
        }
        table.push_row(row);
    }
    Ok(render(args, &table, "cell-topology ablation"))
}

fn cmd_rollback(args: &Args) -> Result<String, ArgError> {
    let reps = args.get_usize("reps", 2)?;
    let seed = args.get_u64("seed", 1)?;
    if logging_of(args)?.is_enabled() {
        return cmd_rollback_logging(args, seed, reps);
    }
    let rows = experiments::ext_rollback(seed, reps);
    let mut table = Table::new(vec![
        "protocol",
        "mean undone (t.u.)",
        "mean max undone",
        "ckpts discarded",
        "worst",
    ]);
    for r in rows {
        table.push_row(vec![
            r.protocol,
            format!("{:.1}", r.mean_total_undone),
            format!("{:.1}", r.mean_max_undone),
            format!("{:.1}", r.mean_ckpts_undone),
            format!("{:.1}", r.worst_total_undone),
        ]);
    }
    Ok(render(args, &table, "rollback after failure"))
}

/// The logging variant of `rollback`: undone work under checkpoint-only
/// recovery vs. replay recovery over the MSS message logs, per protocol,
/// on identical trajectories (logging never perturbs a run).
fn cmd_rollback_logging(args: &Args, seed: u64, reps: usize) -> Result<String, ArgError> {
    let rows = experiments::ext_rollback_logging(seed, reps);
    let mut table = Table::new(vec![
        "protocol",
        "undone w/o log",
        "undone w/ log",
        "replayed (t.u.)",
        "replayed msgs",
        "log peak (KiB)",
    ]);
    for r in &rows {
        table.push_row(vec![
            r.protocol.clone(),
            format!("{:.1}", r.mean_undone_off),
            format!("{:.1}", r.mean_undone_logged),
            format!("{:.1}", r.mean_replayed_time),
            format!("{:.1}", r.mean_replayed_receives),
            format!("{:.1}", r.mean_log_peak_bytes / 1024.0),
        ]);
    }
    let mut out = render(args, &table, "rollback with pessimistic message logging");
    if let Some(dir) = args.get("out-dir") {
        let path = std::path::Path::new(dir).join("ROLLBACK_LOGGING.json");
        let art = mck::artifact::rollback_logging_artifact(seed, reps, &rows);
        mck::artifact::write(&path, &art)
            .map_err(|e| ArgError(format!("--out-dir {}: {e}", path.display())))?;
        out += &format!("rollback-logging artifact -> {}\n", path.display());
    }
    Ok(out)
}

/// `mck crash`: live failure injection (E10). Crashes strike mid-run,
/// recovery executes inside the simulation, and the table compares
/// pessimistic vs. optimistic logging per protocol: wall-clock downtime,
/// availability, and receives lost from unflushed optimistic buffers.
fn cmd_crash(args: &Args) -> Result<String, ArgError> {
    let reps = args.get_usize("reps", 2)?;
    let seed = args.get_u64("seed", 1)?;
    let ts = args.get_f64_list("t-switch-list", &[500.0, 2000.0])?;
    let rows = experiments::ext_recovery(seed, reps, &ts);
    let mut table = Table::new(vec![
        "T_switch",
        "MTBF",
        "protocol",
        "crashes",
        "downtime p|o",
        "avail p|o",
        "undone p|o",
        "unstable lost",
    ]);
    for r in &rows {
        for (name, pess, opt) in &r.series {
            table.push_row(vec![
                format!("{:.0}", r.t_switch),
                format!("{:.0}", r.mtbf),
                name.clone(),
                format!("{:.1}", pess.crashes),
                format!("{:.3}|{:.3}", pess.mean_downtime, opt.mean_downtime),
                format!("{:.4}|{:.4}", pess.availability, opt.availability),
                format!("{:.1}|{:.1}", pess.undone_time, opt.undone_time),
                format!("{:.1}", opt.unstable_lost),
            ]);
        }
    }
    let mut out = render(args, &table, "crash injection and live recovery");
    if let Some(dir) = args.get("out-dir") {
        let path = std::path::Path::new(dir).join("RECOVERY.json");
        let art = mck::artifact::recovery_artifact(seed, reps, &rows);
        mck::artifact::write(&path, &art)
            .map_err(|e| ArgError(format!("--out-dir {}: {e}", path.display())))?;
        out += &format!("recovery artifact -> {}\n", path.display());
    }
    Ok(out)
}

/// Builds a [`mcheck::CheckConfig`] from `mck check` flags. Defaults come
/// from `CheckConfig::default()` — a 2 MH x 2 MSS world with horizon 3,
/// empirically the largest space that explores exhaustively in seconds.
fn check_config_of(args: &Args) -> Result<mcheck::CheckConfig, ArgError> {
    let base = mcheck::CheckConfig::default();
    let name = args.get("protocol").unwrap_or(base.protocol.name());
    let protocol =
        CicKind::parse(name).ok_or_else(|| ArgError(format!("unknown protocol '{name}'")))?;
    let cfg = mcheck::CheckConfig {
        protocol,
        n_mhs: args.get_usize("mh", base.n_mhs)?,
        n_mss: args.get_usize("mss", base.n_mss)?,
        horizon: args.get_f64("horizon", base.horizon)?,
        t_switch: args.get_f64("t-switch", base.t_switch)?,
        seed: args.get_u64("seed", base.seed)?,
        max_states: args.get_usize("max-states", base.max_states)?,
        mutate: args.flag("mutate"),
    };
    cfg.sim_config().check().map_err(|e| ArgError(e.to_string()))?;
    Ok(cfg)
}

fn mc_schedule_json(schedule: &mcheck::Schedule) -> Json {
    Json::Arr(
        schedule
            .steps
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("index".into(), Json::uint(s.choice as u64)),
                    ("label".into(), Json::str(s.label.as_str())),
                    ("time".into(), Json::Num(s.time)),
                ])
            })
            .collect(),
    )
}

/// The `mck.mc/v1` document: self-contained — `params` rebuild the exact
/// root world, so the recorded schedule replays deterministically.
fn mc_artifact(cfg: &mcheck::CheckConfig, out: &mcheck::CheckOutcome) -> Json {
    let counterexample = match &out.counterexample {
        None => Json::Null,
        Some(cx) => Json::Obj(vec![
            (
                "violation".into(),
                Json::Obj(vec![
                    ("kind".into(), Json::str(cx.violation.kind())),
                    ("message".into(), Json::str(cx.violation.to_string())),
                ]),
            ),
            ("schedule".into(), mc_schedule_json(&cx.schedule)),
        ]),
    };
    Json::Obj(vec![
        ("schema".into(), Json::str(mck::artifact::MC_SCHEMA)),
        ("version".into(), Json::str(mck::artifact::version())),
        (
            "params".into(),
            Json::Obj(vec![
                ("protocol".into(), Json::str(cfg.protocol.name())),
                ("mh".into(), Json::uint(cfg.n_mhs as u64)),
                ("mss".into(), Json::uint(cfg.n_mss as u64)),
                ("horizon".into(), Json::Num(cfg.horizon)),
                ("t_switch".into(), Json::Num(cfg.t_switch)),
                ("seed".into(), Json::uint(cfg.seed)),
                ("max_states".into(), Json::uint(cfg.max_states as u64)),
                ("mutate".into(), Json::Bool(cfg.mutate)),
            ]),
        ),
        (
            "result".into(),
            Json::Obj(vec![
                ("states_explored".into(), Json::uint(out.states_explored as u64)),
                ("states_deduped".into(), Json::uint(out.states_deduped as u64)),
                ("max_depth".into(), Json::uint(out.max_depth as u64)),
                ("complete".into(), Json::Bool(out.complete)),
            ]),
        ),
        ("counterexample".into(), counterexample),
    ])
}

fn mc_summary(cfg: &mcheck::CheckConfig, out: &mcheck::CheckOutcome) -> String {
    let mut text = format!(
        "model check: {} {} MH x {} MSS, horizon {}, seed {}{}\n",
        cfg.protocol.name(),
        cfg.n_mhs,
        cfg.n_mss,
        cfg.horizon,
        cfg.seed,
        if cfg.mutate { " (mutated)" } else { "" },
    );
    text += &format!(
        "states   {} explored, {} deduped, depth {}, complete: {}\n",
        out.states_explored, out.states_deduped, out.max_depth, out.complete,
    );
    match &out.counterexample {
        None if out.complete => {
            text += "verdict  no violation in any schedule within the bound\n";
        }
        None => {
            text += "verdict  no violation found (state budget exhausted — raise --max-states)\n";
        }
        Some(cx) => {
            text += &format!("VIOLATION {}\n", cx.violation);
            text += &format!("minimal schedule ({} steps):\n", cx.schedule.steps.len());
            for (i, label) in cx.schedule.labels().iter().enumerate() {
                text += &format!("  {:>3}. {label}\n", i + 1);
            }
        }
    }
    text
}

/// `mck check --replay MC.json`: rebuilds the recorded root world and
/// re-fires the counterexample schedule, verifying it reproduces exactly
/// the recorded violation.
fn cmd_replay(path: &str) -> Result<String, ArgError> {
    let doc = mck::artifact::read(std::path::Path::new(path)).map_err(ArgError)?;
    let schema = mck::artifact::validate(&doc).map_err(|e| ArgError(format!("{path}: {e}")))?;
    if schema != mck::artifact::MC_SCHEMA {
        return Err(ArgError(format!(
            "{path}: schema '{schema}' is not {}",
            mck::artifact::MC_SCHEMA
        )));
    }
    let params = doc.get("params").expect("validated");
    let get = |k: &str| params.get(k).ok_or_else(|| ArgError(format!("{path}: params.{k} missing")));
    let name = get("protocol")?.as_str().unwrap_or("?");
    let protocol =
        CicKind::parse(name).ok_or_else(|| ArgError(format!("unknown protocol '{name}'")))?;
    let cfg = mcheck::CheckConfig {
        protocol,
        n_mhs: get("mh")?.as_u64().unwrap_or(2) as usize,
        n_mss: get("mss")?.as_u64().unwrap_or(2) as usize,
        horizon: get("horizon")?.as_f64().unwrap_or(3.0),
        t_switch: get("t_switch")?.as_f64().unwrap_or(1.0),
        seed: get("seed")?.as_u64().unwrap_or(1),
        max_states: get("max_states")?.as_u64().unwrap_or(100_000) as usize,
        mutate: get("mutate")?.as_bool().unwrap_or(false),
    };
    let cx = match doc.get("counterexample") {
        Some(cx) if !matches!(cx, Json::Null) => cx,
        _ => {
            return Err(ArgError(format!(
                "{path}: artifact records no counterexample to replay"
            )))
        }
    };
    let recorded = cx
        .get("violation")
        .and_then(|w| w.get("message"))
        .and_then(Json::as_str)
        .expect("validated");
    let indices: Vec<usize> = cx
        .get("schedule")
        .and_then(Json::as_arr)
        .expect("validated")
        .iter()
        .map(|s| s.get("index").and_then(Json::as_u64).expect("validated") as usize)
        .collect();
    let replayed = mcheck::replay(&cfg, &indices);
    let mut text = format!(
        "replaying {} steps against {} {} MH x {} MSS, seed {}{}\n",
        indices.len(),
        cfg.protocol.name(),
        cfg.n_mhs,
        cfg.n_mss,
        cfg.seed,
        if cfg.mutate { " (mutated)" } else { "" },
    );
    match replayed.violation {
        Some(v) if v.to_string() == recorded && replayed.schedule.steps.len() == indices.len() => {
            text += &format!("reproduced: {v}\n");
            Ok(text)
        }
        Some(v) => Err(ArgError(format!(
            "replay diverged: reached \"{v}\" after {} steps, artifact records \"{recorded}\"",
            replayed.schedule.steps.len(),
        ))),
        None => Err(ArgError(format!(
            "replay did not reproduce the violation: schedule ran clean, artifact records \"{recorded}\""
        ))),
    }
}

fn cmd_check(args: &Args) -> Result<String, ArgError> {
    if let Some(path) = args.get("replay") {
        return cmd_replay(path);
    }
    let cfg = check_config_of(args)?;
    let out = mcheck::check(&cfg);
    let mut text = mc_summary(&cfg, &out);
    if let Some(path) = args.get("out") {
        let path = std::path::Path::new(path);
        mck::artifact::write(path, &mc_artifact(&cfg, &out))
            .map_err(|e| ArgError(format!("--out {}: {e}", path.display())))?;
        text += &format!("mc artifact -> {}\n", path.display());
    }
    // Exit status is the verdict, so CI needs no output scraping: an
    // unmutated model must check clean, and a mutated one must not —
    // a checker that misses the planted bug is checking nothing.
    match (&out.counterexample, cfg.mutate) {
        (Some(cx), false) => {
            print!("{text}");
            Err(ArgError(format!("model check found a violation: {}", cx.violation)))
        }
        (None, true) => {
            print!("{text}");
            Err(ArgError(
                "mutated model checked clean: the planted bug was not caught".into(),
            ))
        }
        _ => Ok(text),
    }
}

fn cmd_list() -> String {
    let mut out = String::from("experiments:\n");
    for n in 1..=6 {
        out += &format!("  fig {n}: {}\n", experiments::figure(n).caption());
    }
    out += "  claims:   C1-C3 in-text quantitative claims\n";
    out += "  classes:  uncoordinated / coordinated / communication-induced comparison\n";
    out += "  rollback: failure-injection rollback analysis (paper future work)\n";
    out += "            (--logging pessimistic compares replay recovery over MSS message logs)\n";
    out += "  storage:  stable-storage occupancy under garbage collection\n";
    out += "  recovery-time: recovery-line collection cost per protocol\n";
    out += "  crash:    live failure injection with in-simulation recovery\n";
    out += "            (pessimistic vs. optimistic logging; downtime and availability)\n";
    out += "  topologies: cell-adjacency graph ablation\n";
    out += "  contention: wireless channel contention at finite bandwidth\n";
    out += "  profile:  instrumented run emitting the mck.profile/v1 span-attribution artifact\n";
    out += "            (--folded for flamegraph stacks, --prom for Prometheus text)\n";
    out += "  check:    bounded exhaustive model checking — every schedule of a tiny world,\n";
    out += "            safety invariants asserted in every distinct state\n";
    out += "            (--mutate plants a broken forced-checkpoint predicate; --out writes the\n";
    out += "             mck.mc/v1 artifact; --replay re-runs its counterexample schedule)\n";
    out += "  inspect:  summarize a JSON artifact written by run/sweep/fig, or a scenario file\n";
    out += "            (--deterministic prints the artifact minus its timing members, for diffs)\n";
    out += "            (a cache directory lists its entries: key, kind, bytes, age)\n";
    out += "  serve:    HTTP service with a content-addressed result cache\n";
    out += "            (POST /run, POST /sweep, GET /status, GET /metrics, POST /shutdown;\n";
    out += "             warm requests replay stored artifact bytes without running anything)\n";
    out += "scenarios: pass --scenario FILE (mck.scenario/v1) to run/sweep/fig to swap the\n";
    out += "           cell topology, mobility model, and traffic model; see scenarios/\n";
    out
}

fn render(args: &Args, table: &Table, title: &str) -> String {
    let body = if args.flag("csv") {
        table.to_csv()
    } else {
        table.render()
    };
    if title.is_empty() {
        body
    } else {
        format!("{title}\n{body}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn list_shows_all_figures() {
        let out = cmd_list();
        for n in 1..=6 {
            assert!(out.contains(&format!("fig {n}")));
        }
    }

    #[test]
    fn run_produces_report() {
        let out = dispatch(&raw(&[
            "run",
            "--protocol",
            "BCS",
            "--horizon",
            "300",
            "--t-switch",
            "100",
        ]))
        .unwrap();
        assert!(out.contains("N_tot"));
        assert!(out.contains("BCS"));
    }

    #[test]
    fn sweep_renders_table_and_csv() {
        let base = raw(&[
            "sweep",
            "--protocol",
            "QBC",
            "--t-switch-list",
            "100,200",
            "--horizon",
            "200",
            "--reps",
            "2",
        ]);
        let txt = dispatch(&base).unwrap();
        assert!(txt.contains("T_switch"));
        let mut csv = base.clone();
        csv.push("--csv".into());
        let csv_out = dispatch(&csv).unwrap();
        assert!(csv_out.contains("T_switch,N_tot"));
    }

    #[test]
    fn check_small_world_is_clean() {
        let out = dispatch(&raw(&["check", "--protocol", "BCS", "--horizon", "2"])).unwrap();
        assert!(out.contains("no violation"), "{out}");
        assert!(out.contains("complete: true"), "{out}");
    }

    #[test]
    fn check_mutate_writes_replayable_artifact() {
        let path = std::env::temp_dir().join("mck_cli_test_mc.json");
        let out = dispatch(&raw(&[
            "check",
            "--protocol",
            "BCS",
            "--mutate",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("VIOLATION"), "{out}");
        assert!(out.contains("minimal schedule"), "{out}");
        let doc = mck::artifact::read(&path).unwrap();
        assert_eq!(mck::artifact::validate(&doc).unwrap(), mck::artifact::MC_SCHEMA);
        let described = mck::artifact::describe(&doc).unwrap();
        assert!(described.contains("VIOLATION"), "{described}");
        let replayed = dispatch(&raw(&["check", "--replay", path.to_str().unwrap()])).unwrap();
        assert!(replayed.contains("reproduced:"), "{replayed}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn check_replay_rejects_clean_artifact() {
        let path = std::env::temp_dir().join("mck_cli_test_mc_clean.json");
        dispatch(&raw(&[
            "check",
            "--protocol",
            "QBC",
            "--horizon",
            "2",
            "--out",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let err = dispatch(&raw(&["check", "--replay", path.to_str().unwrap()])).unwrap_err();
        assert!(err.0.contains("no counterexample"), "{}", err.0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_command_fails() {
        assert!(dispatch(&raw(&["frobnicate"])).is_err());
        assert!(dispatch(&raw(&[])).is_err());
        assert!(dispatch(&raw(&["run", "--protocol", "XXX"])).is_err());
        assert!(dispatch(&raw(&["run", "--queue", "bogus"])).is_err());
        assert!(dispatch(&raw(&["run", "--pb-codec", "huffman"])).is_err());
        assert!(dispatch(&raw(&["run", "--logging", "eager"])).is_err());
        assert!(dispatch(&raw(&["run", "--fail-mtbf", "-5"])).is_err());
        // MSS crashes need a message log to recover from.
        assert!(dispatch(&raw(&["run", "--fail-mss-mtbf", "500"])).is_err());
    }

    #[test]
    fn rle_codec_changes_tp_wire_bytes_only() {
        let base = ["run", "--protocol", "TP", "--horizon", "500"];
        let dense = dispatch(&raw(&base)).unwrap();
        let mut rle_args = raw(&base);
        rle_args.extend(raw(&["--pb-codec", "rle"]));
        let rle = dispatch(&rle_args).unwrap();
        // Same checkpoints/messages (the codec never perturbs the
        // trajectory), but the summaries differ where wire bytes show up.
        assert_ne!(dense, rle, "RLE must shrink TP's modelled piggyback bytes");
        let ckpt_lines = |s: &str| {
            s.lines()
                .filter(|l| l.contains("ckpt") || l.contains("N_tot"))
                .map(str::to_owned)
                .collect::<Vec<_>>()
        };
        assert_eq!(ckpt_lines(&dense), ckpt_lines(&rle));
    }

    #[test]
    fn failure_injection_run_reports_recovery() {
        let out = dispatch(&raw(&[
            "run",
            "--protocol",
            "QBC",
            "--horizon",
            "2000",
            "--t-switch",
            "200",
            "--logging",
            "optimistic",
            "--flush-latency",
            "5",
            "--fail-mtbf",
            "300",
        ]))
        .unwrap();
        assert!(out.contains("crashes"), "{out}");
        assert!(out.contains("availability"), "{out}");
    }

    #[test]
    fn crash_command_renders_and_writes_artifact() {
        let dir = std::env::temp_dir().join("mck_cli_test_crash");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dispatch(&raw(&[
            "crash",
            "--reps",
            "1",
            "--t-switch-list",
            "500",
            "--out-dir",
            dir.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("downtime p|o"), "{out}");
        let art = dir.join("RECOVERY.json");
        let inspected = dispatch(&raw(&["inspect", art.to_str().unwrap()])).unwrap();
        assert!(inspected.contains("mck.recovery/v1"), "{inspected}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn logged_run_reports_log_accounting_without_changing_results() {
        let base = &[
            "run",
            "--protocol",
            "TP",
            "--horizon",
            "300",
            "--t-switch",
            "100",
        ];
        let off = dispatch(&raw(base)).unwrap();
        assert!(!off.contains("log entries"));
        let mut logged = raw(base);
        logged.extend(raw(&["--logging", "pessimistic"]));
        let on = dispatch(&logged).unwrap();
        assert!(on.contains("log entries"), "{on}");
        assert!(on.contains("log bytes"), "{on}");
        // Logging must not perturb the trajectory: every row the plain run
        // printed appears in the logged run's report (modulo the column
        // padding, which the extra log rows widen).
        let norm = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
        let on_rows: Vec<String> = on.lines().map(norm).collect();
        for line in off.lines() {
            if line.trim().chars().all(|c| c == '-') {
                continue; // separator rule, width differs with the log rows
            }
            assert!(
                on_rows.contains(&norm(line)),
                "missing {line:?} in logged output"
            );
        }
    }

    #[test]
    fn queue_and_jobs_flags_leave_results_unchanged() {
        let base = &[
            "run",
            "--protocol",
            "QBC",
            "--horizon",
            "400",
            "--t-switch",
            "100",
        ];
        let heap = dispatch(&raw(base)).unwrap();
        let mut with_flags = raw(base);
        with_flags.extend(raw(&["--queue", "calendar", "--jobs", "2"]));
        let calendar = dispatch(&with_flags).unwrap();
        set_jobs(0); // restore for other tests
        assert_eq!(heap, calendar, "queue backend must not change results");
    }

    #[test]
    fn run_writes_artifacts_and_inspect_reads_them() {
        let dir = std::env::temp_dir();
        let metrics = dir.join("mck_cli_test_metrics.json");
        let trace = dir.join("mck_cli_test_trace.jsonl");
        let out = dispatch(&raw(&[
            "run",
            "--protocol",
            "QBC",
            "--horizon",
            "300",
            "--t-switch",
            "100",
            "--metrics",
            metrics.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("metrics artifact ->"));
        assert!(out.contains("trace ("));

        // The metrics artifact parses and inspects.
        let inspected = dispatch(&raw(&["inspect", metrics.to_str().unwrap()])).unwrap();
        assert!(inspected.contains("mck.run/v1"));
        assert!(inspected.contains("n_tot"));

        // The trace stream is non-empty JSONL.
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.lines().count() > 0);
        std::fs::remove_file(&metrics).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn inspect_rejects_missing_file() {
        assert!(dispatch(&raw(&["inspect"])).is_err());
        assert!(dispatch(&raw(&["inspect", "/nonexistent/x.json"])).is_err());
    }

    /// Path to a bundled scenario file, resolved relative to the workspace.
    fn bundled(name: &str) -> String {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../scenarios")
            .join(name)
            .to_str()
            .unwrap()
            .to_string()
    }

    #[test]
    fn paper_scenario_is_a_no_op() {
        let base = &["run", "--protocol", "QBC", "--horizon", "400", "--t-switch", "100"];
        let plain = dispatch(&raw(base)).unwrap();
        let mut with = raw(base);
        with.extend(raw(&["--scenario", &bundled("paper.json")]));
        let scenario = dispatch(&with).unwrap();
        assert_eq!(plain, scenario, "paper scenario must not change results");
    }

    #[test]
    fn markov_scenario_runs_and_flags_override_it() {
        let base = raw(&[
            "run",
            "--scenario",
            &bundled("markov_grid.json"),
            "--horizon",
            "400",
            "--t-switch",
            "100",
        ]);
        let out = dispatch(&base).unwrap();
        assert!(out.contains("N_tot"), "{out}");
        // Same scenario, same flags -> identical output (determinism).
        assert_eq!(out, dispatch(&base).unwrap());
        // A different seed flag overrides the scenario-applied config.
        let mut reseeded = base.clone();
        reseeded.extend(raw(&["--seed", "7"]));
        assert_ne!(out, dispatch(&reseeded).unwrap());
    }

    #[test]
    fn scenario_errors_are_reported() {
        assert!(dispatch(&raw(&["run", "--scenario", "/nonexistent.json"])).is_err());
        let dir = std::env::temp_dir();
        let bad = dir.join("mck_cli_bad_scenario.json");
        std::fs::write(&bad, r#"{"schema":"mck.scenario/v1","params":{"t_switch":-5}}"#).unwrap();
        let err = dispatch(&raw(&["run", "--scenario", bad.to_str().unwrap()])).unwrap_err();
        assert!(err.0.contains("t_switch"), "{}", err.0);
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn inspect_reads_scenario_files() {
        let out = dispatch(&raw(&["inspect", &bundled("hotspot.json")])).unwrap();
        assert!(out.contains("mck.scenario/v1"), "{out}");
        assert!(out.contains("hotspot"), "{out}");
    }

    #[test]
    fn profile_command_writes_all_three_renditions() {
        let dir = std::env::temp_dir().join("mck_cli_test_profile");
        std::fs::create_dir_all(&dir).unwrap();
        let art = dir.join("PROFILE.json");
        let folded = dir.join("out.folded");
        let prom = dir.join("out.prom");
        let out = dispatch(&raw(&[
            "profile",
            "--protocol",
            "QBC",
            "--horizon",
            "300",
            "--t-switch",
            "100",
            "--out",
            art.to_str().unwrap(),
            "--folded",
            folded.to_str().unwrap(),
            "--prom",
            prom.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("profile artifact ->"), "{out}");
        let inspected = dispatch(&raw(&["inspect", art.to_str().unwrap()])).unwrap();
        assert!(inspected.contains("mck.profile/v1"), "{inspected}");
        assert!(inspected.contains("span coverage"), "{inspected}");
        let stacks = std::fs::read_to_string(&folded).unwrap();
        assert!(stacks.lines().any(|l| l.starts_with("activity ")), "{stacks}");
        let metrics = std::fs::read_to_string(&prom).unwrap();
        assert!(metrics.contains("# TYPE ckpt_total counter"), "{metrics}");

        // The deterministic view is identical across same-seed profile runs
        // even though the timing members differ.
        let det_a = dispatch(&raw(&["inspect", art.to_str().unwrap(), "--deterministic"])).unwrap();
        assert!(!det_a.contains("\"timing\""), "{det_a}");
        dispatch(&raw(&[
            "profile",
            "--protocol",
            "QBC",
            "--horizon",
            "300",
            "--t-switch",
            "100",
            "--out",
            art.to_str().unwrap(),
        ]))
        .unwrap();
        let det_b = dispatch(&raw(&["inspect", art.to_str().unwrap(), "--deterministic"])).unwrap();
        assert_eq!(det_a, det_b);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_and_progress_flags_leave_run_output_unchanged() {
        let base = &[
            "run",
            "--protocol",
            "QBC",
            "--horizon",
            "300",
            "--t-switch",
            "100",
        ];
        let plain = dispatch(&raw(base)).unwrap();
        let mut overlaid = raw(base);
        overlaid.extend(raw(&["--profile", "--progress"]));
        assert_eq!(plain, dispatch(&overlaid).unwrap());
    }

    #[test]
    fn fig_validates_number() {
        assert!(dispatch(&raw(&["fig"])).is_err());
        assert!(dispatch(&raw(&["fig", "9"])).is_err());
        assert!(dispatch(&raw(&["fig", "two"])).is_err());
    }

    #[test]
    fn cached_run_is_byte_identical_and_inspectable() {
        let dir = std::env::temp_dir().join("mck_cli_test_cache_run");
        std::fs::remove_dir_all(&dir).ok();
        let base = raw(&[
            "run",
            "--protocol",
            "QBC",
            "--horizon",
            "300",
            "--t-switch",
            "100",
            "--cache-dir",
            dir.to_str().unwrap(),
        ]);
        let cold = dispatch(&base).unwrap();
        let warm = dispatch(&base).unwrap();
        assert_eq!(cold, warm, "warm stdout must be byte-identical");
        assert!(cold.contains("mck.run/v1"), "{cold}");

        // A different seed is a different key, not a stale hit.
        let mut reseeded = base.clone();
        reseeded.extend(raw(&["--seed", "9"]));
        assert_ne!(cold, dispatch(&reseeded).unwrap());

        // The cache directory inspects as an index table with both entries.
        let index = dispatch(&raw(&["inspect", dir.to_str().unwrap()])).unwrap();
        assert!(index.contains("mck.cache_index/v1: 2 entries"), "{index}");
        assert!(index.contains("mck.run/v1"), "{index}");
        assert!(index.contains("age"), "{index}");

        // Individual entries inspect with a cache-entry header.
        let objects = dir.join("objects");
        let entry = std::fs::read_dir(&objects).unwrap().next().unwrap().unwrap();
        let inspected = dispatch(&raw(&["inspect", entry.path().to_str().unwrap()])).unwrap();
        assert!(inspected.contains("cache entry "), "{inspected}");
        assert!(inspected.contains("mck.run/v1"), "{inspected}");

        // --metrics on a warm request writes the stored bytes verbatim.
        let copy = dir.join("copy.json");
        let mut with_metrics = base.clone();
        with_metrics.extend(raw(&["--metrics", copy.to_str().unwrap()]));
        dispatch(&with_metrics).unwrap();
        let written = std::fs::read_to_string(&copy).unwrap();
        let key = servekit::key::run_key(
            &config_of(&Args::parse(&base, KNOWN, BOOLEAN).unwrap()).unwrap(),
        );
        let stored = std::fs::read_to_string(objects.join(format!("{key}.json"))).unwrap();
        assert_eq!(written, stored);

        // --trace is meaningless against a cache and is rejected.
        let mut traced = base.clone();
        traced.extend(raw(&["--trace", "/tmp/x.jsonl"]));
        assert!(dispatch(&traced).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cached_fig_hits_per_figure() {
        let dir = std::env::temp_dir().join("mck_cli_test_cache_fig");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // A short-horizon scenario keeps the cold computation cheap and
        // exercises the scenario's participation in the cache key.
        let sc = dir.join("short.json");
        std::fs::write(&sc, r#"{"schema":"mck.scenario/v1","params":{"horizon":400}}"#).unwrap();
        let base = raw(&[
            "fig",
            "1",
            "--reps",
            "1",
            "--scenario",
            sc.to_str().unwrap(),
            "--cache-dir",
            dir.to_str().unwrap(),
        ]);
        let cold = dispatch(&base).unwrap();
        let warm = dispatch(&base).unwrap();
        assert_eq!(cold, warm);
        assert!(cold.contains("mck.figure/v1"), "{cold}");
        let index = dispatch(&raw(&["inspect", dir.to_str().unwrap()])).unwrap();
        assert!(index.contains("mck.cache_index/v1: 1 entries"), "{index}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_flags_are_validated() {
        assert!(dispatch(&raw(&["serve", "--max-entries", "0"])).is_err());
        assert!(dispatch(&raw(&["serve", "--queue-depth", "0"])).is_err());
        assert!(dispatch(&raw(&["serve", "--port", "x"])).is_err());
    }
}
