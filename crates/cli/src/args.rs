//! Minimal command-line argument parsing (no external dependencies).
//!
//! Supports `--flag value`, `--flag=value` and boolean `--flag` forms, plus
//! positional arguments. Unknown flags are an error so typos fail loudly.

use std::collections::BTreeMap;

/// Parsed command line: positionals plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
}

/// Parse failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl Args {
    /// Parses raw arguments against a set of known option names.
    ///
    /// `boolean` options take no value; all other known options consume the
    /// next argument (or use an inline `=value`).
    pub fn parse(
        raw: &[String],
        known: &[&str],
        boolean: &[&str],
    ) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(stripped) = a.strip_prefix("--") {
                let (key, inline) = match stripped.split_once('=') {
                    Some((k, v)) => (k.to_string(), Some(v.to_string())),
                    None => (stripped.to_string(), None),
                };
                if boolean.contains(&key.as_str()) {
                    if inline.is_some() {
                        return Err(ArgError(format!("--{key} takes no value")));
                    }
                    args.options.insert(key, "true".into());
                } else if known.contains(&key.as_str()) {
                    let value = match inline {
                        Some(v) => v,
                        None => it
                            .next()
                            .cloned()
                            .ok_or_else(|| ArgError(format!("--{key} needs a value")))?,
                    };
                    args.options.insert(key, value);
                } else {
                    return Err(ArgError(format!("unknown option --{key}")));
                }
            } else {
                args.positionals.push(a.clone());
            }
        }
        Ok(args)
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positional arguments.
    #[allow(dead_code)] // exercised by tests; kept for CLI extensions
    pub fn n_positionals(&self) -> usize {
        self.positionals.len()
    }

    /// Raw string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.options.contains_key(key)
    }

    /// Typed option with default.
    pub fn get_f64(&self, key: &str, default: f64) -> Result<f64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: '{v}' is not a number"))),
        }
    }

    /// Typed integer option with default.
    pub fn get_usize(&self, key: &str, default: usize) -> Result<usize, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: '{v}' is not an integer"))),
        }
    }

    /// Typed u64 option with default.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{key}: '{v}' is not an integer"))),
        }
    }

    /// Comma-separated list of floats.
    pub fn get_f64_list(&self, key: &str, default: &[f64]) -> Result<Vec<f64>, ArgError> {
        match self.get(key) {
            None => Ok(default.to_vec()),
            Some(v) => v
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse()
                        .map_err(|_| ArgError(format!("--{key}: '{x}' is not a number")))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_and_options() {
        let a = Args::parse(
            &raw(&["fig", "2", "--reps", "5", "--csv"]),
            &["reps"],
            &["csv"],
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("fig"));
        assert_eq!(a.positional(1), Some("2"));
        assert_eq!(a.get_usize("reps", 1).unwrap(), 5);
        assert!(a.flag("csv"));
        assert_eq!(a.n_positionals(), 2);
    }

    #[test]
    fn inline_equals_form() {
        let a = Args::parse(&raw(&["--t-switch=500"]), &["t-switch"], &[]).unwrap();
        assert_eq!(a.get_f64("t-switch", 0.0).unwrap(), 500.0);
    }

    #[test]
    fn unknown_option_rejected() {
        let e = Args::parse(&raw(&["--nope"]), &["reps"], &[]).unwrap_err();
        assert!(e.0.contains("unknown option"));
    }

    #[test]
    fn missing_value_rejected() {
        let e = Args::parse(&raw(&["--reps"]), &["reps"], &[]).unwrap_err();
        assert!(e.0.contains("needs a value"));
    }

    #[test]
    fn boolean_with_value_rejected() {
        let e = Args::parse(&raw(&["--csv=yes"]), &[], &["csv"]).unwrap_err();
        assert!(e.0.contains("takes no value"));
    }

    #[test]
    fn list_parsing() {
        let a = Args::parse(&raw(&["--ts", "100, 200,500"]), &["ts"], &[]).unwrap();
        assert_eq!(a.get_f64_list("ts", &[]).unwrap(), vec![100.0, 200.0, 500.0]);
        let d = Args::default();
        assert_eq!(d.get_f64_list("ts", &[1.0]).unwrap(), vec![1.0]);
    }

    #[test]
    fn defaults_apply() {
        let a = Args::default();
        assert_eq!(a.get_f64("x", 2.5).unwrap(), 2.5);
        assert_eq!(a.get_u64("y", 7).unwrap(), 7);
        assert!(!a.flag("csv"));
    }

    #[test]
    fn bad_number_rejected() {
        let a = Args::parse(&raw(&["--reps", "five"]), &["reps"], &[]).unwrap();
        assert!(a.get_usize("reps", 1).is_err());
    }
}
