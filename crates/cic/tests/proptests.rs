//! Property-style tests: protocol executions vs. the causality oracle.
//!
//! A miniature zero-latency multi-host harness drives each protocol through
//! random schedules of sends, receives and basic checkpoints, records a
//! `causality::Trace`, and then checks the protocols' correctness theorems
//! against the protocol-agnostic consistency machinery:
//!
//! * **BCS/QBC**: every same-index recovery line is consistent;
//! * **TP/BCS/QBC**: every checkpoint taken belongs to some consistent
//!   global checkpoint (no useless checkpoints / no Z-cycles);
//! * **QBC**: a checkpoint flagged as *replacing its predecessor* really is
//!   equivalent — substituting it into the recovery line keeps consistency.
//!
//! Random cases are generated deterministically with `SimRng` (no external
//! test dependencies).

use causality::cut::{is_consistent, max_consistent_cut_containing, Cut};
use causality::trace::{CkptKind, MsgId, ProcId, Trace, TraceBuilder};
use cic::coordinated::{ControlMsg, KooToueg};
use cic::prelude::*;
use cic::recovery::{all_index_lines, max_index};
use simkit::prelude::SimRng;

#[derive(Debug, Clone)]
enum Step {
    /// Host takes a basic checkpoint (cell switch or disconnect).
    Basic { host: usize, disconnect: bool },
    /// Host sends an application message to another host (delivered after
    /// `delay` further steps, FIFO per pair).
    Send { from: usize, to_offset: usize, delay: usize },
}

/// Deterministic random schedule of at most `len - 1` steps.
fn gen_steps(gen: &mut SimRng, n_hosts: usize, len: usize) -> Vec<Step> {
    let n = 1 + gen.index(len - 1);
    (0..n)
        .map(|_| {
            if gen.bernoulli(0.5) {
                Step::Basic {
                    host: gen.index(n_hosts),
                    disconnect: gen.bernoulli(0.5),
                }
            } else {
                Step::Send {
                    from: gen.index(n_hosts),
                    to_offset: 1 + gen.index(n_hosts - 1),
                    delay: gen.index(3),
                }
            }
        })
        .collect()
}

/// Runs a schedule against a set of protocol instances, recording the trace.
/// Each host's QBC "replacement" flags are returned alongside.
struct HarnessOut {
    trace: Trace,
    /// (host, ordinal, index) of checkpoints flagged replaces_predecessor.
    replacements: Vec<(usize, usize, u64)>,
    total_ckpts: usize,
}

fn run_schedule(mut protos: Vec<Box<dyn Protocol>>, schedule: &[Step]) -> HarnessOut {
    let n = protos.len();
    let mut b = TraceBuilder::new(n);
    let mut time = 1.0;
    let mut next_id = 0u64;
    let mut replacements = Vec::new();
    let mut total = 0usize;
    // In-flight: (due_step, MsgId, from, to, piggyback). Sorted by insertion;
    // delivery scans in order → FIFO per pair.
    let mut in_flight: Vec<(usize, MsgId, usize, usize, Piggyback)> = Vec::new();

    for (step_no, step) in schedule.iter().enumerate() {
        // Deliver everything due.
        let mut keep = Vec::new();
        for (due, id, from, to, pb) in in_flight.drain(..) {
            if due <= step_no {
                let out = protos[to].on_receive(from, &pb);
                if let Some(idx) = out.forced {
                    b.checkpoint(ProcId(to), time, idx, CkptKind::Forced);
                    total += 1;
                    time += 0.25;
                }
                b.recv(id, time);
                time += 0.25;
            } else {
                keep.push((due, id, from, to, pb));
            }
        }
        in_flight = keep;

        match *step {
            Step::Basic { host, disconnect } => {
                let reason = if disconnect {
                    BasicReason::Disconnect
                } else {
                    BasicReason::CellSwitch
                };
                let c = protos[host].on_basic(reason);
                let ordinal = b.checkpoint(ProcId(host), time, c.index, reason.kind());
                total += 1;
                if c.replaces_predecessor {
                    replacements.push((host, ordinal, c.index));
                }
                time += 0.25;
            }
            Step::Send { from, to_offset, delay } => {
                let to = (from + to_offset) % n;
                debug_assert_ne!(from, to);
                let pb = protos[from].on_send(to);
                next_id += 1;
                b.send(MsgId(next_id), ProcId(from), ProcId(to), time);
                in_flight.push((step_no + delay, MsgId(next_id), from, to, pb));
                time += 0.25;
            }
        }
    }
    // Flush stragglers in order.
    in_flight.sort_by_key(|(due, id, ..)| (*due, id.0));
    for (_, id, from, to, pb) in in_flight {
        let out = protos[to].on_receive(from, &pb);
        if let Some(idx) = out.forced {
            b.checkpoint(ProcId(to), time, idx, CkptKind::Forced);
            total += 1;
            time += 0.25;
        }
        b.recv(id, time);
        time += 0.25;
    }

    HarnessOut {
        trace: b.finish(),
        replacements,
        total_ckpts: total,
    }
}

fn make_protocols(kind: CicKind, n: usize) -> Vec<Box<dyn Protocol>> {
    (0..n).map(|i| kind.instantiate(i, n, 0)).collect()
}

const N_HOSTS: usize = 4;
const CASES: u64 = 48;

/// BCS theorem: every same-index line is a consistent global checkpoint.
#[test]
fn bcs_index_lines_consistent() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC1C_0001 ^ case);
        let schedule = gen_steps(&mut gen, N_HOSTS, 80);
        let out = run_schedule(make_protocols(CicKind::Bcs, N_HOSTS), &schedule);
        for (k, line) in all_index_lines(&out.trace) {
            assert!(
                is_consistent(&out.trace, &line),
                "BCS line k={k} inconsistent: {:?}",
                line.ordinals()
            );
        }
    }
}

/// QBC inherits the BCS consistency rule.
#[test]
fn qbc_index_lines_consistent() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC1C_0002 ^ case);
        let schedule = gen_steps(&mut gen, N_HOSTS, 80);
        let out = run_schedule(make_protocols(CicKind::Qbc, N_HOSTS), &schedule);
        for (k, line) in all_index_lines(&out.trace) {
            assert!(
                is_consistent(&out.trace, &line),
                "QBC line k={k} inconsistent: {:?}",
                line.ordinals()
            );
        }
    }
}

/// QBC's refinement: selecting the LAST checkpoint of each index (the
/// replacement survivor) instead of the first also yields consistent lines —
/// the equivalence relation of [6,14] in action.
#[test]
fn qbc_replacement_lines_consistent() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC1C_0003 ^ case);
        let schedule = gen_steps(&mut gen, N_HOSTS, 80);
        let out = run_schedule(make_protocols(CicKind::Qbc, N_HOSTS), &schedule);
        let t = &out.trace;
        for k in 0..=max_index(t) {
            let line = Cut::new(
                t.procs()
                    .map(|p| {
                        let ckpts = t.checkpoints(p);
                        // Last checkpoint with index == k, else first with
                        // index >= k, else volatile.
                        ckpts
                            .iter()
                            .filter(|c| c.index == k)
                            .map(|c| c.ordinal)
                            .next_back()
                            .or_else(|| ckpts.iter().find(|c| c.index >= k).map(|c| c.ordinal))
                            .unwrap_or(ckpts.len())
                    })
                    .collect(),
            );
            assert!(
                is_consistent(t, &line),
                "QBC replacement line k={k} inconsistent: {:?}",
                line.ordinals()
            );
        }
    }
}

/// `index_line` edge behaviour over random BCS executions: a host that
/// never reached index `k` contributes its volatile state (ordinal =
/// checkpoint count), every line — including one past `max_index`, where
/// every host is volatile — is consistent under `causality::cut`, and the
/// line's ordinal really selects the first checkpoint with index `>= k`.
#[test]
fn index_line_handles_hosts_that_never_reach_k() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC1C_0007 ^ case);
        let schedule = gen_steps(&mut gen, N_HOSTS, 80);
        let out = run_schedule(make_protocols(CicKind::Bcs, N_HOSTS), &schedule);
        let t = &out.trace;
        for k in 0..=max_index(t) + 1 {
            let line = cic::recovery::index_line(t, k);
            assert!(
                is_consistent(t, &line),
                "case {case}: line k={k} inconsistent: {:?}",
                line.ordinals()
            );
            for p in t.procs() {
                let ckpts = t.checkpoints(p);
                match ckpts.iter().find(|c| c.index >= k) {
                    Some(c) => assert_eq!(line.ordinal(p), c.ordinal),
                    None => assert_eq!(
                        line.ordinal(p),
                        ckpts.len(),
                        "case {case}: {p} never reached k={k}, must stay volatile"
                    ),
                }
            }
        }
        // One past the maximum: the fully volatile cut.
        let beyond = cic::recovery::index_line(t, max_index(t) + 1);
        for p in t.procs() {
            assert_eq!(beyond.ordinal(p), t.checkpoints(p).len());
        }
    }
}

/// No protocol ever takes a useless checkpoint: each one belongs to some
/// consistent global checkpoint (allowing volatile completions).
#[test]
fn no_useless_checkpoints() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC1C_0004 ^ case);
        let schedule = gen_steps(&mut gen, N_HOSTS, 60);
        let kind = CicKind::PAPER[gen.index(CicKind::PAPER.len())];
        let out = run_schedule(make_protocols(kind, N_HOSTS), &schedule);
        let t = &out.trace;
        for p in t.procs() {
            for c in t.checkpoints(p) {
                assert!(
                    max_consistent_cut_containing(t, p, c.ordinal).is_some(),
                    "{kind}: checkpoint ({p}, ord {}) is useless",
                    c.ordinal
                );
            }
        }
    }
}

/// QBC replacement flags are truthful: the flagged checkpoint has the same
/// index as its predecessor-in-index, and swapping it into the line
/// preserves consistency (tested via qbc_replacement_lines too; here we
/// check the flag-index agreement).
#[test]
fn qbc_replacement_flags_truthful() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC1C_0005 ^ case);
        let schedule = gen_steps(&mut gen, N_HOSTS, 80);
        let out = run_schedule(make_protocols(CicKind::Qbc, N_HOSTS), &schedule);
        let t = &out.trace;
        for (host, ordinal, index) in &out.replacements {
            let ckpts = t.checkpoints(ProcId(*host));
            let me = &ckpts[*ordinal];
            assert_eq!(me.index, *index);
            // Some earlier checkpoint of the same host carries the same
            // index (the one being replaced; ordinal 0 carries index 0).
            assert!(
                ckpts[..*ordinal].iter().any(|c| c.index == *index),
                "replacement at ({host}, {ordinal}) has no predecessor with index {index}"
            );
        }
    }
}

/// The number of checkpoints in the trace equals the harness count —
/// nothing lost, nothing double-recorded (meta-check of the harness).
#[test]
fn trace_checkpoint_accounting() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC1C_0006 ^ case);
        let schedule = gen_steps(&mut gen, N_HOSTS, 60);
        let kind = CicKind::ALL[gen.index(CicKind::ALL.len())];
        let out = run_schedule(make_protocols(kind, N_HOSTS), &schedule);
        assert_eq!(out.trace.total_checkpoints(), out.total_ckpts);
    }
}

/// On send-free schedules all protocols take exactly the basic checkpoints
/// (no communication ⇒ nothing induced).
#[test]
fn no_communication_no_forced() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC1C_0007 ^ case);
        let n = 1 + gen.index(39);
        let schedule: Vec<Step> = (0..n)
            .map(|_| Step::Basic {
                host: gen.index(N_HOSTS),
                disconnect: false,
            })
            .collect();
        for kind in CicKind::PAPER {
            let out = run_schedule(make_protocols(kind, N_HOSTS), &schedule);
            assert_eq!(out.trace.total_checkpoints(), schedule.len(), "{kind}");
        }
    }
}

/// Koo–Toueg liveness: for any dependency pattern and any delivery order of
/// its control messages, every session terminates with all participants
/// unblocked and exactly one checkpoint per participant.
#[test]
fn koo_toueg_sessions_always_terminate() {
    for case in 0..256u64 {
        let mut gen = SimRng::new(0xC1C_0008 ^ case);
        let n = 5;
        let n_msgs = gen.index(25);
        let initiator = gen.index(n);
        let mut procs: Vec<KooToueg> = (0..n).map(|i| KooToueg::new(i, n)).collect();
        // Build random transitive dependencies from an app-message pattern.
        for _ in 0..n_msgs {
            let from = gen.index(n);
            let to = (from + 1 + gen.index(n - 1)) % n;
            let pb = procs[from].piggyback();
            procs[to].on_app_message(from, &pb);
        }
        // Initiate one session and pump its control messages to quiescence,
        // choosing the next delivery pseudo-randomly.
        let mut pending: Vec<(usize, usize, ControlMsg)> = Vec::new(); // (from, to, msg)
        let act0 = procs[initiator].initiate(1);
        let mut ckpts = u64::from(act0.checkpoint.is_some());
        for (to, m) in act0.send {
            pending.push((initiator, to, m));
        }
        let mut steps = 0;
        while !pending.is_empty() {
            steps += 1;
            assert!(steps < 10_000, "session did not quiesce");
            let idx = gen.index(pending.len());
            let (from, to, msg) = pending.swap_remove(idx);
            let action = match msg {
                ControlMsg::KtRequest { round } => procs[to].on_request(from, round),
                ControlMsg::KtAck { round, ref participants } => {
                    procs[to].on_ack(from, round, participants)
                }
                ControlMsg::KtCommit { round } => procs[to].on_commit(round),
                other => panic!("unexpected message {other:?}"),
            };
            ckpts += u64::from(action.checkpoint.is_some());
            for (dest, m) in action.send {
                pending.push((to, dest, m));
            }
        }
        // Liveness: nobody remains blocked.
        for (i, p) in procs.iter().enumerate() {
            assert!(!p.is_blocked(), "process {i} still blocked");
        }
        // Each participant checkpointed exactly once this session.
        let participated = procs.iter().filter(|p| p.count() > 0).count() as u64;
        assert_eq!(ckpts, participated);
        assert!(ckpts >= 1, "at least the initiator checkpoints");
    }
}
