//! Conformance walk-throughs of the paper's pseudo-code.
//!
//! Each test executes one protocol through an explicit event script and
//! checks every intermediate state transition against the procedures
//! printed in the paper (Section 4). These are deliberately verbose,
//! step-by-step vectors: when an implementation detail drifts from the
//! paper, the failing step names the exact rule that broke.

use cic::prelude::*;

/// Shorthand for an index piggyback.
fn sn(v: u64) -> Piggyback {
    Piggyback::Index { sn: v }
}

// ---------------------------------------------------------------------------
// BCS: "Procedures executed at an MH h_i" (paper §4.2)
// ---------------------------------------------------------------------------

#[test]
fn bcs_paper_walkthrough() {
    let mut h = Bcs::new();
    // Procedure init: sn_i := 0.
    assert_eq!(h.sn(), 0);

    // When sending a message m: m.sn := sn_i.
    assert_eq!(h.on_send(1), sn(0));

    // Upon receipt of m with m.sn = 0: NOT (m.sn > sn_i) ⇒ no checkpoint.
    assert_eq!(h.on_receive(2, &sn(0)).forced, None);
    assert_eq!(h.sn(), 0);

    // Upon receipt of m with m.sn = 2 > 0: sn_i := 2; forced checkpoint
    // C_{i,2}.
    let out = h.on_receive(2, &sn(2));
    assert_eq!(out.forced, Some(2));
    assert_eq!(h.sn(), 2);

    // When switching cell: sn_i := sn_i + 1; take C_{i,3}.
    let c = h.on_basic(BasicReason::CellSwitch);
    assert_eq!(c.index, 3);
    assert!(!c.replaces_predecessor);

    // When disconnecting: sn_i := sn_i + 1; take C_{i,4}.
    let c = h.on_basic(BasicReason::Disconnect);
    assert_eq!(c.index, 4);

    // Subsequent send carries the new number.
    assert_eq!(h.on_send(0), sn(4));
}

// ---------------------------------------------------------------------------
// QBC: "Procedures executed at an MH h_i" (paper §4.2, QBC variant)
// ---------------------------------------------------------------------------

#[test]
fn qbc_paper_walkthrough() {
    let mut h = Qbc::new();
    // init: sn_i := 0; rn_i := -1 (⊥).
    assert_eq!(h.sn(), 0);
    assert_eq!(h.rn(), None);

    // Switching cell with rn_i ≠ sn_i: sequence number NOT incremented;
    // C_{i,0} replaces its predecessor (the initial checkpoint).
    let c = h.on_basic(BasicReason::CellSwitch);
    assert_eq!((c.index, c.replaces_predecessor), (0, true));
    assert_eq!(h.sn(), 0);

    // Receive m.sn = 0: rn_i := max(0, ⊥) = 0; 0 > 0 false ⇒ no forced.
    assert_eq!(h.on_receive(1, &sn(0)).forced, None);
    assert_eq!(h.rn(), Some(0));

    // Now rn_i = sn_i = 0: the next basic checkpoint increments to 1.
    let c = h.on_basic(BasicReason::Disconnect);
    assert_eq!((c.index, c.replaces_predecessor), (1, false));
    assert_eq!(h.sn(), 1);

    // Receive m.sn = 3 > 1: rn_i := 3; sn_i := 3; forced C_{i,3}.
    let out = h.on_receive(2, &sn(3));
    assert_eq!(out.forced, Some(3));
    assert_eq!((h.sn(), h.rn()), (3, Some(3)));

    // rn = sn again ⇒ next basic increments to 4.
    assert_eq!(h.on_basic(BasicReason::CellSwitch).index, 4);
    // ...and with no further receives, the one after replaces at 4.
    let c = h.on_basic(BasicReason::CellSwitch);
    assert_eq!((c.index, c.replaces_predecessor), (4, true));
}

// ---------------------------------------------------------------------------
// TP: "Procedures executed at an MH h_i" (paper §4.1)
// ---------------------------------------------------------------------------

#[test]
fn tp_paper_walkthrough() {
    let n = 3;
    let mut h = Tp::new(0, n, 7); // h_0 at MSS 7
    let vec0 = |ckpt: Vec<u64>, loc: Vec<u32>| Piggyback::Vectors {
        ckpt: ckpt.into(),
        loc: loc.into(),
    };

    // init: phase := RECV.
    assert_eq!(h.phase(), Phase::Recv);

    // Receive in RECV phase: no checkpoint (phase stays RECV).
    assert_eq!(
        h.on_receive(1, &vec0(vec![0, 0, 0], vec![0, 0, 0])).forced,
        None
    );
    assert_eq!(h.phase(), Phase::Recv);

    // Send: phase := SEND; vectors piggybacked.
    match h.on_send(1) {
        Piggyback::Vectors { ckpt, loc } => {
            assert_eq!(&ckpt[..], &[0, 0, 0]);
            assert_eq!(loc[0], 7);
        }
        other => panic!("TP must piggyback vectors, got {other:?}"),
    }
    assert_eq!(h.phase(), Phase::Send);

    // Another send keeps SEND (no checkpoint between sends).
    h.on_send(2);
    assert_eq!(h.phase(), Phase::Send);

    // Receive while phase = SEND: forced checkpoint, phase := RECV.
    let out = h.on_receive(2, &vec0(vec![0, 0, 5], vec![0, 0, 9]));
    assert_eq!(out.forced, Some(1));
    assert_eq!(h.phase(), Phase::Recv);
    // Dependency merge happened after the checkpoint: h now knows h_2's
    // 5th checkpoint sits at MSS 9.
    assert_eq!(h.ckpt_vector(), &[1, 0, 5]);
    assert_eq!(h.loc_vector()[2], 9);

    // Paper pseudo-code: cell switch runs the checkpointing procedure (no
    // phase manipulation is listed). The checkpoint increments the count.
    h.on_send(1); // phase := SEND
    let c = h.on_basic(BasicReason::CellSwitch);
    assert_eq!(c.index, 2);
    assert_eq!(h.phase(), Phase::Send, "faithful TP keeps the phase");
    // Hence the next receive still forces a checkpoint.
    assert_eq!(
        h.on_receive(1, &vec0(vec![0, 2, 0], vec![0, 4, 0])).forced,
        Some(3)
    );
}

// ---------------------------------------------------------------------------
// Cross-host scenario: the BCS consistency rule end to end.
// ---------------------------------------------------------------------------

#[test]
fn bcs_same_index_scenario_three_hosts() {
    // h0 switches twice (sn: 1 then 2), sending after each; sn propagates
    // through h1 to h2; every host ends with sn = 2 and the forced
    // checkpoints carry exactly the indices the rule dictates.
    let mut h0 = Bcs::new();
    let mut h1 = Bcs::new();
    let mut h2 = Bcs::new();

    h0.on_basic(BasicReason::CellSwitch); // C_{0,1}
    let m1 = h0.on_send(1);
    assert_eq!(h1.on_receive(0, &m1).forced, Some(1)); // C_{1,1} forced

    h0.on_basic(BasicReason::CellSwitch); // C_{0,2}
    let m2 = h0.on_send(2);
    assert_eq!(h2.on_receive(0, &m2).forced, Some(2)); // C_{2,2} forced

    // h1 (sn = 1) hears from h2 (sn = 2): forced to 2.
    let m3 = h2.on_send(1);
    assert_eq!(h1.on_receive(2, &m3).forced, Some(2)); // C_{1,2} forced

    assert_eq!((h0.sn(), h1.sn(), h2.sn()), (2, 2, 2));

    // And a stale message (sn = 1) from the past forces nobody.
    assert_eq!(h0.on_receive(1, &sn(1)).forced, None);
    assert_eq!(h2.on_receive(1, &sn(1)).forced, None);
}

#[test]
fn qbc_saves_exactly_where_the_paper_says() {
    // Two hosts never communicating: QBC takes the same number of
    // checkpoints as BCS (all basic), but its sequence numbers stay at 0 —
    // so when communication finally happens, BCS forces and QBC does not.
    let mut b0 = Bcs::new();
    let mut b1 = Bcs::new();
    let mut q0 = Qbc::new();
    let mut q1 = Qbc::new();

    for _ in 0..5 {
        b0.on_basic(BasicReason::CellSwitch);
        q0.on_basic(BasicReason::CellSwitch);
    }
    assert_eq!(b0.sn(), 5);
    assert_eq!(q0.sn(), 0);

    // h0 sends to h1.
    let mb = b0.on_send(1);
    let mq = q0.on_send(1);
    // BCS: m.sn = 5 > 0 forces a checkpoint at h1.
    assert_eq!(b1.on_receive(0, &mb).forced, Some(5));
    // QBC: m.sn = 0 forces nothing — five checkpoints' worth of index
    // pressure simply never existed.
    assert_eq!(q1.on_receive(0, &mq).forced, None);
}

// ---------------------------------------------------------------------------
// Uncoordinated: no rules at all.
// ---------------------------------------------------------------------------

#[test]
fn uncoordinated_never_reacts_to_messages() {
    let mut u = Uncoordinated::new();
    for i in 0..20 {
        assert_eq!(u.on_send(1).wire_bytes(), 0);
        assert_eq!(u.on_receive(1, &Piggyback::None).forced, None, "step {i}");
    }
    assert_eq!(u.on_basic(BasicReason::Periodic).index, 1);
}
