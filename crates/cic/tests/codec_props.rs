//! Property tests for the TP piggyback wire codecs.
//!
//! The RLE codec is a pure *wire* optimisation: it must never change what
//! the protocol does, only how many bytes the modelled piggyback costs.
//! These tests pin that contract over deterministic random cases:
//!
//! * encode → decode is the identity on arbitrary `(CKPT, LOC)` vectors;
//! * encoding into a reused buffer equals encoding fresh;
//! * merging an RLE piggyback equals decoding it and merging dense;
//! * a whole population run under dense, RLE, or a mixed choice of codecs
//!   produces identical protocol trajectories (same forced checkpoints,
//!   same final dependency vectors).
//!
//! Random cases are generated with `SimRng` (no external test deps),
//! mirroring the `proptests.rs` idiom.

use std::sync::Arc;

use cic::piggyback::{rle_decode, rle_encode, rle_encode_into, PbCodec, Piggyback};
use cic::prelude::*;
use cic::tp::Tp;
use simkit::prelude::SimRng;

const CASES: u64 = 48;

/// Random vectors with run structure: a few segments of shared values so
/// the encoder actually exercises multi-host runs, not just width-1 ones.
fn gen_vectors(gen: &mut SimRng, n: usize) -> (Vec<u64>, Vec<u32>) {
    let mut ckpt = Vec::with_capacity(n);
    let mut loc = Vec::with_capacity(n);
    while ckpt.len() < n {
        let seg = (1 + gen.index(1 + n / 3)).min(n - ckpt.len());
        let c = gen.index(5) as u64;
        let l = gen.index(3) as u32;
        for _ in 0..seg {
            ckpt.push(c);
            loc.push(l);
        }
    }
    (ckpt, loc)
}

#[test]
fn rle_round_trips_on_random_vectors() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC0DE_C001 ^ case);
        let n = 1 + gen.index(200);
        let (ckpt, loc) = gen_vectors(&mut gen, n);
        let runs = rle_encode(&ckpt, &loc);
        assert_eq!(runs.iter().map(|r| r.len as usize).sum::<usize>(), n);
        assert_eq!(rle_decode(&runs), (ckpt, loc), "case {case}");
    }
}

#[test]
fn rle_encode_into_reused_buffer_matches_fresh_encode() {
    let mut buf = Vec::new();
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC0DE_C002 ^ case);
        let n = 1 + gen.index(200);
        let (ckpt, loc) = gen_vectors(&mut gen, n);
        // `buf` still holds the previous case's runs — the reuse path the
        // TP wire cache takes on every refresh.
        rle_encode_into(&ckpt, &loc, &mut buf);
        assert_eq!(buf, rle_encode(&ckpt, &loc), "case {case}");
    }
}

/// Merging an RLE piggyback is exactly decode-then-dense-merge: two
/// receivers in identical states, fed the same vectors through either wire
/// form, end in identical states with identical forced checkpoints.
#[test]
fn rle_merge_equals_dense_merge() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC0DE_C003 ^ case);
        let n = 2 + gen.index(30);
        let me = gen.index(n);
        let mut dense_rx = Tp::new(me, n, 0);
        let mut rle_rx = Tp::new(me, n, 0);
        for round in 0..4u32 {
            let (ckpt, loc) = gen_vectors(&mut gen, n);
            let from = (me + 1) % n;
            let d = dense_rx.on_receive(
                from,
                &Piggyback::Vectors { ckpt: ckpt.clone().into(), loc: loc.clone().into() },
            );
            let r = rle_rx.on_receive(
                from,
                &Piggyback::VectorsRle { runs: Arc::new(rle_encode(&ckpt, &loc)) },
            );
            assert_eq!(d.forced, r.forced, "case {case} round {round}");
            assert_eq!(dense_rx.ckpt_vector(), rle_rx.ckpt_vector(), "case {case}");
            assert_eq!(dense_rx.loc_vector(), rle_rx.loc_vector(), "case {case}");
        }
    }
}

#[derive(Debug, Clone)]
enum Step {
    Basic { host: usize },
    Send { from: usize, to_offset: usize, delay: usize },
}

fn gen_steps(gen: &mut SimRng, n_hosts: usize, len: usize) -> Vec<Step> {
    let n = 1 + gen.index(len - 1);
    (0..n)
        .map(|_| {
            if gen.bernoulli(0.4) {
                Step::Basic { host: gen.index(n_hosts) }
            } else {
                Step::Send {
                    from: gen.index(n_hosts),
                    to_offset: 1 + gen.index(n_hosts - 1),
                    delay: gen.index(3),
                }
            }
        })
        .collect()
}

/// `(host, forced index)` log of forced checkpoints, in delivery order.
type ForcedLog = Vec<(usize, u64)>;
/// Final `(count, CKPT, LOC)` per host.
type FinalStates = Vec<(u64, Vec<u64>, Vec<u32>)>;

/// Runs a schedule over a TP population with per-host codecs; returns the
/// forced-checkpoint log and each host's final state.
fn run_tp(codecs: &[PbCodec], schedule: &[Step]) -> (ForcedLog, FinalStates) {
    let n = codecs.len();
    let mut protos: Vec<Tp> = codecs
        .iter()
        .enumerate()
        .map(|(i, &c)| Tp::with_codec(i, n, 0, c))
        .collect();
    let mut forced = Vec::new();
    let mut in_flight: Vec<(usize, usize, usize, Piggyback)> = Vec::new();
    for (step_no, step) in schedule.iter().enumerate() {
        let mut keep = Vec::new();
        for (due, from, to, pb) in in_flight.drain(..) {
            if due <= step_no {
                if let Some(idx) = protos[to].on_receive(from, &pb).forced {
                    forced.push((to, idx));
                }
            } else {
                keep.push((due, from, to, pb));
            }
        }
        in_flight = keep;
        match *step {
            Step::Basic { host } => {
                protos[host].on_basic(BasicReason::CellSwitch);
            }
            Step::Send { from, to_offset, delay } => {
                let to = (from + to_offset) % n;
                let pb = protos[from].on_send(to);
                in_flight.push((step_no + delay, from, to, pb));
            }
        }
    }
    in_flight.sort_by_key(|&(due, from, to, _)| (due, from, to));
    for (_, from, to, pb) in in_flight {
        if let Some(idx) = protos[to].on_receive(from, &pb).forced {
            forced.push((to, idx));
        }
    }
    let finals = protos
        .iter()
        .map(|p| (p.current_index(), p.ckpt_vector().to_vec(), p.loc_vector().to_vec()))
        .collect();
    (forced, finals)
}

/// The codec choice — all dense, all RLE, or mixed per host — never changes
/// the protocol trajectory: same forced checkpoints in the same order, same
/// final dependency vectors everywhere.
#[test]
fn codec_choice_never_changes_the_trajectory() {
    const N_HOSTS: usize = 5;
    for case in 0..CASES {
        let mut gen = SimRng::new(0xC0DE_C004 ^ case);
        let schedule = gen_steps(&mut gen, N_HOSTS, 80);
        let dense = run_tp(&[PbCodec::Dense; N_HOSTS], &schedule);
        let rle = run_tp(&[PbCodec::Rle; N_HOSTS], &schedule);
        let mixed_codecs: Vec<PbCodec> = (0..N_HOSTS)
            .map(|i| if i % 2 == 0 { PbCodec::Dense } else { PbCodec::Rle })
            .collect();
        let mixed = run_tp(&mixed_codecs, &schedule);
        assert_eq!(dense, rle, "case {case}: all-RLE diverged from dense");
        assert_eq!(dense, mixed, "case {case}: mixed codecs diverged from dense");
    }
}
