//! The protocol interface.
//!
//! Each mobile host runs one [`Protocol`] instance — a purely local state
//! machine driven by four kinds of events:
//!
//! * the host **sends** an application message ([`Protocol::on_send`]
//!   returns the control information to piggyback);
//! * an application message **arrives** ([`Protocol::on_receive`] decides,
//!   *before* delivery, whether a **forced** checkpoint must be taken);
//! * the host takes a mobility-mandated **basic** checkpoint — cell switch
//!   or voluntary disconnection ([`Protocol::on_basic`]);
//! * the host moves to a new MSS ([`Protocol::on_relocate`]; only TP cares,
//!   for its `LOC[]` vector).
//!
//! The contract mirrors the paper's pseudo-code exactly; the surrounding
//! simulator supplies timing, routing and storage.

use causality::trace::CkptKind;

use crate::piggyback::Piggyback;

/// Which mobility event mandated a basic checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasicReason {
    /// The host is leaving its current cell (hand-off).
    CellSwitch,
    /// The host is voluntarily disconnecting from the network.
    Disconnect,
    /// Timer-driven checkpoint (uncoordinated baseline only).
    Periodic,
}

impl BasicReason {
    /// The trace record kind for a checkpoint taken for this reason.
    pub fn kind(self) -> CkptKind {
        match self {
            BasicReason::CellSwitch => CkptKind::CellSwitch,
            BasicReason::Disconnect => CkptKind::Disconnect,
            BasicReason::Periodic => CkptKind::Periodic,
        }
    }
}

/// Outcome of a basic checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BasicCkpt {
    /// Protocol index assigned to the checkpoint (e.g. the BCS/QBC sequence
    /// number).
    pub index: u64,
    /// True when the checkpoint is *equivalent* to its predecessor in the
    /// recovery line and replaces it (QBC's optimization): the previous
    /// checkpoint with the same index may be discarded from stable storage.
    pub replaces_predecessor: bool,
}

/// Outcome of a message arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReceiveOutcome {
    /// `Some(index)` when the protocol forces a checkpoint (to be taken
    /// *before* the message is delivered to the application), with the
    /// protocol index to assign to it.
    pub forced: Option<u64>,
}

impl ReceiveOutcome {
    /// No forced checkpoint.
    pub const NONE: ReceiveOutcome = ReceiveOutcome { forced: None };

    /// Forced checkpoint with the given index.
    pub fn forced(index: u64) -> Self {
        ReceiveOutcome {
            forced: Some(index),
        }
    }
}

/// A communication-induced checkpointing protocol instance for one host.
///
/// `Send` is a supertrait so boxed protocol state can migrate between the
/// parallel runner's worker threads when a hand-off moves a host across a
/// partition boundary; protocol state is plain data, so every
/// implementation satisfies it for free.
pub trait Protocol: Send {
    /// Short protocol name as used in the paper's figures ("TP", "BCS",
    /// "QBC", …).
    fn name(&self) -> &'static str;

    /// The host is sending an application message to host `to` (a flat
    /// index). Returns the control information to piggyback.
    fn on_send(&mut self, to: usize) -> Piggyback;

    /// An application message from host `from` with piggyback `pb` arrived.
    /// Called before delivery; the caller must take the forced checkpoint
    /// (if any) before processing the message.
    fn on_receive(&mut self, from: usize, pb: &Piggyback) -> ReceiveOutcome;

    /// A basic (mobility-mandated) checkpoint is being taken.
    fn on_basic(&mut self, reason: BasicReason) -> BasicCkpt;

    /// The host relocated to MSS `mss` (default: ignored).
    fn on_relocate(&mut self, mss: u32) {
        let _ = mss;
    }

    /// Wire bytes this protocol currently piggybacks per message (for the
    /// control-information scalability experiment).
    fn piggyback_bytes(&self) -> usize;

    /// The protocol index the *next* checkpoint would carry (diagnostic).
    fn current_index(&self) -> u64;

    /// Clones this protocol instance behind a fresh box.
    ///
    /// The model checker forks world states on every enabled event, which
    /// requires duplicating the per-host protocol state machines; trait
    /// objects cannot derive `Clone`, so each implementation provides it.
    fn clone_box(&self) -> Box<dyn Protocol>;

    /// Appends the protocol's complete logical state to `out` as words.
    ///
    /// Two instances that push identical words must behave identically on
    /// all future inputs — this feeds the model checker's state-hash
    /// deduplication. Derived caches (e.g. TP's encoded wire vectors) must
    /// be excluded; logical state (sequence numbers, vectors, phases) must
    /// all be included.
    fn state_sig(&self, out: &mut Vec<u64>);
}

impl Clone for Box<dyn Protocol> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_reason_maps_to_kind() {
        assert_eq!(BasicReason::CellSwitch.kind(), CkptKind::CellSwitch);
        assert_eq!(BasicReason::Disconnect.kind(), CkptKind::Disconnect);
        assert_eq!(BasicReason::Periodic.kind(), CkptKind::Periodic);
    }

    #[test]
    fn receive_outcome_constructors() {
        assert_eq!(ReceiveOutcome::NONE.forced, None);
        assert_eq!(ReceiveOutcome::forced(3).forced, Some(3));
    }
}
