//! Protocol-specific recovery-line construction.
//!
//! The selling point of the paper's protocols is that every local checkpoint
//! is associated with a consistent global checkpoint **on the fly** — no
//! message exchange is needed at rollback time. This module implements the
//! per-protocol association rules, and the `mck` test-suite verifies them
//! against the protocol-agnostic consistency machinery of the `causality`
//! crate.
//!
//! * **Index-based rule (BCS, QBC)**: the recovery line with index `k`
//!   consists, for each host, of the first checkpoint with sequence number
//!   `>= k` (paper: "if there is a jump in the sequence number of a process,
//!   the first checkpoint with greater sequence number must be included").
//!   A host that never reached index `k` contributes its volatile state —
//!   it has never received any message tied to line `k`, so its whole
//!   execution is on the safe side of the line.
//!
//! * **TP**: the dependency vectors recorded at each checkpoint name, for
//!   every host, the exact checkpoint index to include; equivalently, the
//!   maximal consistent cut containing the checkpoint can be recomputed
//!   from the trace, which is what [`tp_line`] does.

use causality::cut::{max_consistent_cut_containing, Cut};
use causality::trace::{ProcId, Trace};

/// The index-based recovery line for index `k`: for each host, the ordinal
/// of its first checkpoint with protocol index `>= k`, or its volatile state
/// (ordinal `n_checkpoints`) when it never reached `k`.
pub fn index_line(trace: &Trace, k: u64) -> Cut {
    Cut::new(
        trace
            .procs()
            .map(|p| {
                trace
                    .first_ckpt_with_index_at_least(p, k)
                    .unwrap_or_else(|| trace.checkpoints(p).len())
            })
            .collect(),
    )
}

/// The largest protocol index appearing anywhere in the trace; lines exist
/// for every `k` up to and including this.
pub fn max_index(trace: &Trace) -> u64 {
    trace
        .procs()
        .flat_map(|p| trace.checkpoints(p).iter().map(|c| c.index))
        .max()
        .unwrap_or(0)
}

/// All index-based recovery lines of the trace (`k = 0 ..= max_index`).
pub fn all_index_lines(trace: &Trace) -> Vec<(u64, Cut)> {
    (0..=max_index(trace))
        .map(|k| (k, index_line(trace, k)))
        .collect()
}

/// The consistent global checkpoint associated with TP checkpoint
/// `(p, ordinal)`: the maximal consistent cut containing it, `None` if the
/// checkpoint is useless (TP guarantees this never happens for checkpoints
/// it takes).
pub fn tp_line(trace: &Trace, p: ProcId, ordinal: usize) -> Option<Cut> {
    max_consistent_cut_containing(trace, p, ordinal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use causality::cut::is_consistent;
    use causality::trace::{CkptKind, MsgId, TraceBuilder};

    /// A small BCS-style trace: indices stamp the line structure.
    ///   p0: C1(sn=1)           C2(sn=2)
    ///   p1:        C1(sn=1)  (never reaches 2)
    fn indexed_trace() -> Trace {
        let mut b = TraceBuilder::new(2);
        b.checkpoint(ProcId(0), 1.0, 1, CkptKind::CellSwitch);
        b.checkpoint(ProcId(1), 2.0, 1, CkptKind::CellSwitch);
        b.checkpoint(ProcId(0), 3.0, 2, CkptKind::CellSwitch);
        b.finish()
    }

    #[test]
    fn line_zero_is_initial_cut() {
        let t = indexed_trace();
        assert_eq!(index_line(&t, 0).ordinals(), &[0, 0]);
    }

    #[test]
    fn line_selects_first_at_least_k() {
        let t = indexed_trace();
        assert_eq!(index_line(&t, 1).ordinals(), &[1, 1]);
        assert_eq!(index_line(&t, 2).ordinals(), &[2, 2]); // p1: volatile (= 2 ckpts)
    }

    #[test]
    fn max_index_spans_all_processes() {
        let t = indexed_trace();
        assert_eq!(max_index(&t), 2);
        assert_eq!(all_index_lines(&t).len(), 3);
    }

    #[test]
    fn index_jump_includes_first_greater() {
        // Forced checkpoint jumps sn 0 → 5; line 3 must pick it.
        let mut b = TraceBuilder::new(1);
        b.checkpoint(ProcId(0), 1.0, 5, CkptKind::Forced);
        let t = b.finish();
        assert_eq!(index_line(&t, 3).ordinals(), &[1]);
        assert_eq!(index_line(&t, 5).ordinals(), &[1]);
        assert_eq!(index_line(&t, 6).ordinals(), &[2]); // volatile
    }

    /// BCS invariant on a hand-built compliant trace: same-index lines are
    /// consistent. (The full property-based verification over simulated
    /// runs lives in the mck crate.)
    #[test]
    fn bcs_style_lines_are_consistent() {
        // p0 switches (sn 1), sends with sn=1; p1 receives and is forced to
        // checkpoint with sn=1 BEFORE delivery.
        let mut b = TraceBuilder::new(2);
        b.checkpoint(ProcId(0), 1.0, 1, CkptKind::CellSwitch);
        b.send(MsgId(1), ProcId(0), ProcId(1), 2.0);
        // Forced checkpoint precedes the receive in the trace:
        b.checkpoint(ProcId(1), 3.0, 1, CkptKind::Forced);
        b.recv(MsgId(1), 3.0);
        let t = b.finish();
        for (k, line) in all_index_lines(&t) {
            assert!(is_consistent(&t, &line), "line {k} inconsistent");
        }
    }

    #[test]
    fn empty_trace_has_one_line_the_initial_cut() {
        // No checkpoints, no messages: only line 0 exists and it is the
        // initial cut; any higher index selects volatile state everywhere.
        let t = TraceBuilder::new(3).finish();
        assert_eq!(max_index(&t), 0);
        assert_eq!(all_index_lines(&t).len(), 1);
        let line = index_line(&t, 0);
        assert_eq!(line.ordinals(), &[0, 0, 0]);
        assert!(is_consistent(&t, &line));
        let volatile = index_line(&t, 1);
        assert_eq!(
            volatile.ordinals(),
            &[
                t.checkpoints(ProcId(0)).len(),
                t.checkpoints(ProcId(1)).len(),
                t.checkpoints(ProcId(2)).len()
            ]
        );
        assert!(is_consistent(&t, &volatile));
    }

    #[test]
    fn host_never_reaching_k_contributes_volatile_state() {
        // p1 stops at sn=1 while p0 reaches sn=2; p0's pre-C2 send is
        // delivered into p1's volatile tail. Line 2 must keep p1 volatile,
        // and the included receive is matched by the included send —
        // consistent.
        let mut b = TraceBuilder::new(2);
        b.checkpoint(ProcId(0), 1.0, 1, CkptKind::CellSwitch);
        b.checkpoint(ProcId(1), 1.5, 1, CkptKind::CellSwitch);
        b.send(MsgId(1), ProcId(0), ProcId(1), 1.8);
        b.checkpoint(ProcId(0), 2.0, 2, CkptKind::CellSwitch);
        b.recv(MsgId(1), 3.5);
        let t = b.finish();
        let line = index_line(&t, 2);
        assert_eq!(line.ordinal(ProcId(0)), 2);
        assert_eq!(line.ordinal(ProcId(1)), t.checkpoints(ProcId(1)).len());
        assert!(is_consistent(&t, &line));
        // Beyond every index: the fully volatile cut, also consistent.
        let beyond = index_line(&t, max_index(&t) + 1);
        assert_eq!(beyond.ordinal(ProcId(0)), t.checkpoints(ProcId(0)).len());
        assert!(is_consistent(&t, &beyond));
    }

    #[test]
    fn tp_line_delegates_to_containing_cut() {
        let mut b = TraceBuilder::new(2);
        b.checkpoint(ProcId(0), 1.0, 1, CkptKind::Forced);
        let t = b.finish();
        let line = tp_line(&t, ProcId(0), 1).unwrap();
        assert!(is_consistent(&t, &line));
        assert_eq!(line.ordinal(ProcId(0)), 1);
    }
}
