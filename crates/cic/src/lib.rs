//! `cic` — checkpointing protocols for distributed systems with mobile hosts.
//!
//! This crate implements, as host-local state machines, every checkpointing
//! protocol the paper evaluates or discusses:
//!
//! | Type | Protocol | Class | Piggyback |
//! |------|----------|-------|-----------|
//! | [`tp::Tp`] | Acharya–Badrinath two-phase | communication-induced | 2·n integers |
//! | [`bcs::Bcs`] | Briatico–Ciuffoletti–Simoncini | communication-induced | 1 integer |
//! | [`qbc::Qbc`] | Quaglia–Baldoni–Ciciani | communication-induced | 1 integer |
//! | [`uncoordinated::Uncoordinated`] | independent/periodic | uncoordinated | none |
//! | [`coordinated::ChandyLamport`] | distributed snapshot | coordinated | markers |
//! | [`coordinated::PrakashSinghal`] | minimal-process | coordinated | n bits + requests |
//! | [`coordinated::KooToueg`] | blocking minimal-process | coordinated | n bits + 2-phase requests |
//!
//! The first four implement the common [`protocol::Protocol`] trait (the
//! paper's mobile-host event hooks); the coordinated baselines expose
//! explicit control-message state machines in [`coordinated`].
//!
//! [`recovery`] builds the per-protocol recovery lines ("consistent global
//! checkpoints on the fly"); their consistency is independently verified
//! against the `causality` crate in the workspace test-suite.
//!
//! # Example: the QBC rules in five lines
//!
//! ```
//! use cic::prelude::*;
//!
//! let mut q = Qbc::new();
//! assert_eq!(q.on_send(1), Piggyback::Index { sn: 0 });
//! // Receiving a higher index forces a checkpoint before delivery:
//! assert_eq!(q.on_receive(0, &Piggyback::Index { sn: 3 }).forced, Some(3));
//! // A basic checkpoint advances the index only when rn == sn:
//! assert!(!q.on_basic(BasicReason::CellSwitch).replaces_predecessor);
//! assert_eq!(q.sn(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bcs;
pub mod coordinated;
pub mod piggyback;
pub mod protocol;
pub mod qbc;
pub mod recovery;
pub mod tp;
pub mod uncoordinated;

use protocol::Protocol;

/// The communication-induced protocols under comparison, as named in the
/// paper's figures, plus the uncoordinated baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CicKind {
    /// Acharya–Badrinath two-phase protocol.
    Tp,
    /// Briatico–Ciuffoletti–Simoncini index-based protocol.
    Bcs,
    /// Quaglia–Baldoni–Ciciani optimized index-based protocol.
    Qbc,
    /// Uncoordinated baseline (no induced checkpoints).
    Uncoordinated,
}

impl CicKind {
    /// All trait-based protocols.
    pub const ALL: [CicKind; 4] =
        [CicKind::Tp, CicKind::Bcs, CicKind::Qbc, CicKind::Uncoordinated];

    /// The three protocols the paper's figures compare, in figure order.
    pub const PAPER: [CicKind; 3] = [CicKind::Tp, CicKind::Bcs, CicKind::Qbc];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            CicKind::Tp => "TP",
            CicKind::Bcs => "BCS",
            CicKind::Qbc => "QBC",
            CicKind::Uncoordinated => "UNCOORD",
        }
    }

    /// Parses a protocol name (case-insensitive).
    pub fn parse(s: &str) -> Option<CicKind> {
        match s.to_ascii_uppercase().as_str() {
            "TP" => Some(CicKind::Tp),
            "BCS" => Some(CicKind::Bcs),
            "QBC" => Some(CicKind::Qbc),
            "UNCOORD" | "UNCOORDINATED" | "NONE" => Some(CicKind::Uncoordinated),
            _ => None,
        }
    }

    /// Instantiates the protocol for host `me` of `n`, initially at MSS
    /// `mss`.
    pub fn instantiate(self, me: usize, n: usize, mss: u32) -> Box<dyn Protocol> {
        self.instantiate_with(me, n, mss, piggyback::PbCodec::Dense)
    }

    /// Like [`CicKind::instantiate`], selecting the wire codec for vector
    /// piggybacks. Only TP carries vectors; the other protocols ignore the
    /// codec (their piggybacks are already O(1)).
    pub fn instantiate_with(
        self,
        me: usize,
        n: usize,
        mss: u32,
        codec: piggyback::PbCodec,
    ) -> Box<dyn Protocol> {
        match self {
            CicKind::Tp => Box::new(tp::Tp::with_codec(me, n, mss, codec)),
            CicKind::Bcs => Box::new(bcs::Bcs::new()),
            CicKind::Qbc => Box::new(qbc::Qbc::new()),
            CicKind::Uncoordinated => Box::new(uncoordinated::Uncoordinated::new()),
        }
    }
}

impl std::fmt::Display for CicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bcs::Bcs;
    pub use crate::coordinated::{ChandyLamport, ControlMsg, CoordAction, KooToueg, PrakashSinghal};
    pub use crate::piggyback::{PbCodec, Piggyback};
    pub use crate::protocol::{BasicCkpt, BasicReason, Protocol, ReceiveOutcome};
    pub use crate::qbc::Qbc;
    pub use crate::tp::{Phase, Tp};
    pub use crate::uncoordinated::Uncoordinated;
    pub use crate::CicKind;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_match_paper() {
        assert_eq!(CicKind::Tp.name(), "TP");
        assert_eq!(CicKind::Bcs.name(), "BCS");
        assert_eq!(CicKind::Qbc.name(), "QBC");
        assert_eq!(format!("{}", CicKind::Qbc), "QBC");
    }

    #[test]
    fn parse_round_trips() {
        for k in CicKind::ALL {
            assert_eq!(CicKind::parse(k.name()), Some(k));
            assert_eq!(CicKind::parse(&k.name().to_lowercase()), Some(k));
        }
        assert_eq!(CicKind::parse("nope"), None);
    }

    #[test]
    fn instantiate_produces_named_protocols() {
        for k in CicKind::ALL {
            let p = k.instantiate(0, 5, 2);
            assert_eq!(p.name(), k.name());
        }
    }
}
