//! The QBC index-based protocol (Quaglia–Baldoni–Ciciani).
//!
//! QBC is BCS plus a *checkpoint-equivalence* optimization that slows the
//! growth of sequence numbers. Each host tracks, besides `sn_i`, a receive
//! number `rn_i`: the largest sequence number received on any application
//! message (initially "none", written ⊥ or −1 in the paper).
//!
//! At a **basic** checkpoint, the sequence number is incremented **only if
//! `rn_i = sn_i`** — i.e. only if some received message actually tied this
//! host's current interval to the recovery line with index `sn_i`. When
//! `rn_i < sn_i`, the new checkpoint does not causally depend on any
//! checkpoint in the line with index `sn_i`, so it can *replace* its
//! predecessor in that line (the two are *equivalent* w.r.t. the line) and
//! the sequence number stays put.
//!
//! Slower sequence numbers ⇒ fewer messages satisfy `m.sn > sn` at the
//! receivers ⇒ fewer forced checkpoints — the whole effect the paper
//! measures (up to ~23 % fewer checkpoints than BCS in heterogeneous
//! environments). The piggyback is still a single integer, so QBC scales
//! exactly like BCS.

use crate::piggyback::{Piggyback, INT_BYTES};
use crate::protocol::{BasicCkpt, BasicReason, Protocol, ReceiveOutcome};

/// Per-host QBC state.
#[derive(Debug, Clone)]
pub struct Qbc {
    sn: u64,
    /// Largest sequence number received with an application message; `None`
    /// until the first receive (the paper's `rn := -1`).
    rn: Option<u64>,
}

impl Qbc {
    /// A fresh instance (`sn = 0`, `rn = ⊥`).
    pub fn new() -> Self {
        Qbc { sn: 0, rn: None }
    }

    /// Current sequence number.
    pub fn sn(&self) -> u64 {
        self.sn
    }

    /// Current receive number (`None` = nothing received yet).
    pub fn rn(&self) -> Option<u64> {
        self.rn
    }
}

impl Default for Qbc {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for Qbc {
    fn name(&self) -> &'static str {
        "QBC"
    }

    fn on_send(&mut self, _to: usize) -> Piggyback {
        Piggyback::Index { sn: self.sn }
    }

    fn on_receive(&mut self, _from: usize, pb: &Piggyback) -> ReceiveOutcome {
        let m_sn = pb
            .index()
            .expect("QBC requires Index piggybacks on all messages");
        self.rn = Some(self.rn.map_or(m_sn, |rn| rn.max(m_sn)));
        if m_sn > self.sn {
            self.sn = m_sn;
            ReceiveOutcome::forced(self.sn)
        } else {
            ReceiveOutcome::NONE
        }
    }

    fn on_basic(&mut self, _reason: BasicReason) -> BasicCkpt {
        if self.rn == Some(self.sn) {
            // The current interval is tied into the recovery line with index
            // sn: the checkpoint must open a new index.
            self.sn += 1;
            BasicCkpt {
                index: self.sn,
                replaces_predecessor: false,
            }
        } else {
            // rn < sn (or nothing received): the new checkpoint is
            // equivalent to its predecessor in the line with index sn and
            // replaces it.
            BasicCkpt {
                index: self.sn,
                replaces_predecessor: true,
            }
        }
    }

    fn piggyback_bytes(&self) -> usize {
        INT_BYTES
    }

    fn current_index(&self) -> u64 {
        self.sn
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn state_sig(&self, out: &mut Vec<u64>) {
        out.push(self.sn);
        // Disambiguate rn = ⊥ from rn = k without colliding with sn values.
        match self.rn {
            None => out.push(u64::MAX),
            Some(rn) => out.push(rn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_like_bcs_but_with_bottom_rn() {
        let q = Qbc::new();
        assert_eq!(q.sn(), 0);
        assert_eq!(q.rn(), None);
        assert_eq!(q.name(), "QBC");
    }

    #[test]
    fn first_basic_checkpoint_replaces_initial() {
        // rn = ⊥ ≠ sn = 0, so the first basic checkpoint does NOT advance
        // the sequence number: it replaces the (initial) checkpoint with
        // index 0. This is the key divergence from BCS.
        let mut q = Qbc::new();
        let c = q.on_basic(BasicReason::CellSwitch);
        assert_eq!(c.index, 0);
        assert!(c.replaces_predecessor);
        assert_eq!(q.sn(), 0);
    }

    #[test]
    fn basic_advances_only_when_rn_equals_sn() {
        let mut q = Qbc::new();
        // Receive a message carrying sn = 0: rn becomes 0 = sn.
        assert_eq!(q.on_receive(0, &Piggyback::Index { sn: 0 }).forced, None);
        assert_eq!(q.rn(), Some(0));
        let c = q.on_basic(BasicReason::CellSwitch);
        assert_eq!(c.index, 1);
        assert!(!c.replaces_predecessor);
        assert_eq!(q.sn(), 1);
        // No further receive: the next basic checkpoint replaces.
        let c2 = q.on_basic(BasicReason::Disconnect);
        assert_eq!(c2.index, 1);
        assert!(c2.replaces_predecessor);
        assert_eq!(q.sn(), 1);
    }

    #[test]
    fn forced_checkpoint_mirrors_bcs() {
        let mut q = Qbc::new();
        let out = q.on_receive(0, &Piggyback::Index { sn: 5 });
        assert_eq!(out.forced, Some(5));
        assert_eq!(q.sn(), 5);
        assert_eq!(q.rn(), Some(5));
    }

    #[test]
    fn rn_tracks_maximum_received() {
        let mut q = Qbc::new();
        q.on_receive(0, &Piggyback::Index { sn: 4 });
        q.on_receive(1, &Piggyback::Index { sn: 2 });
        assert_eq!(q.rn(), Some(4));
        assert_eq!(q.sn(), 4);
    }

    #[test]
    fn stale_receive_does_not_force() {
        let mut q = Qbc::new();
        q.on_receive(0, &Piggyback::Index { sn: 3 }); // forced, sn = 3
        assert_eq!(q.on_receive(1, &Piggyback::Index { sn: 3 }).forced, None);
        assert_eq!(q.on_receive(1, &Piggyback::Index { sn: 1 }).forced, None);
    }

    #[test]
    fn sequence_numbers_grow_slower_than_bcs() {
        // Isolated host switching cells repeatedly: BCS counts up, QBC
        // stays at 0 (each new checkpoint replaces the previous).
        use crate::bcs::Bcs;
        let mut b = Bcs::new();
        let mut q = Qbc::new();
        for _ in 0..10 {
            b.on_basic(BasicReason::CellSwitch);
            q.on_basic(BasicReason::CellSwitch);
        }
        assert_eq!(b.sn(), 10);
        assert_eq!(q.sn(), 0);
    }

    #[test]
    fn send_stamps_current_sn() {
        let mut q = Qbc::new();
        q.on_receive(0, &Piggyback::Index { sn: 2 });
        assert_eq!(q.on_send(1), Piggyback::Index { sn: 2 });
    }

    #[test]
    fn piggyback_is_one_integer() {
        assert_eq!(Qbc::new().piggyback_bytes(), INT_BYTES);
    }

    #[test]
    fn replacement_cycle_after_receive() {
        // sn=1 after a forced jump; rn=1 too; basic → advance to 2; then
        // without receives, subsequent basics replace at 2.
        let mut q = Qbc::new();
        q.on_receive(0, &Piggyback::Index { sn: 1 });
        assert_eq!(q.on_basic(BasicReason::CellSwitch).index, 2);
        let c = q.on_basic(BasicReason::CellSwitch);
        assert_eq!(c.index, 2);
        assert!(c.replaces_predecessor);
    }
}
