//! The BCS index-based protocol (Briatico–Ciuffoletti–Simoncini).
//!
//! Every host `h_i` keeps a sequence number `sn_i` (0 at start) and stamps
//! it on every outgoing message. The rules, verbatim from the paper:
//!
//! * **receive** of `m` with `m.sn > sn_i`: set `sn_i := m.sn` and take a
//!   *forced* checkpoint (before delivering `m`);
//! * **cell switch / disconnect**: `sn_i := sn_i + 1`, take the basic
//!   checkpoint.
//!
//! Consistency: the set of first checkpoints with sequence number `>= k`
//! (one per host) is a consistent global checkpoint, for any `k`. Because
//! the only piggyback is one integer, BCS scales with the number of hosts.

use crate::piggyback::{Piggyback, INT_BYTES};
use crate::protocol::{BasicCkpt, BasicReason, Protocol, ReceiveOutcome};

/// Per-host BCS state.
#[derive(Debug, Clone)]
pub struct Bcs {
    sn: u64,
}

impl Bcs {
    /// A fresh instance (`sn = 0`).
    pub fn new() -> Self {
        Bcs { sn: 0 }
    }

    /// Current sequence number.
    pub fn sn(&self) -> u64 {
        self.sn
    }
}

impl Default for Bcs {
    fn default() -> Self {
        Self::new()
    }
}

impl Protocol for Bcs {
    fn name(&self) -> &'static str {
        "BCS"
    }

    fn on_send(&mut self, _to: usize) -> Piggyback {
        Piggyback::Index { sn: self.sn }
    }

    fn on_receive(&mut self, _from: usize, pb: &Piggyback) -> ReceiveOutcome {
        let m_sn = pb
            .index()
            .expect("BCS requires Index piggybacks on all messages");
        if m_sn > self.sn {
            self.sn = m_sn;
            ReceiveOutcome::forced(self.sn)
        } else {
            ReceiveOutcome::NONE
        }
    }

    fn on_basic(&mut self, _reason: BasicReason) -> BasicCkpt {
        self.sn += 1;
        BasicCkpt {
            index: self.sn,
            replaces_predecessor: false,
        }
    }

    fn piggyback_bytes(&self) -> usize {
        INT_BYTES
    }

    fn current_index(&self) -> u64 {
        self.sn
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn state_sig(&self, out: &mut Vec<u64>) {
        out.push(self.sn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let b = Bcs::new();
        assert_eq!(b.sn(), 0);
        assert_eq!(b.current_index(), 0);
        assert_eq!(b.name(), "BCS");
    }

    #[test]
    fn send_stamps_current_sn() {
        let mut b = Bcs::new();
        assert_eq!(b.on_send(1), Piggyback::Index { sn: 0 });
        b.on_basic(BasicReason::CellSwitch);
        assert_eq!(b.on_send(1), Piggyback::Index { sn: 1 });
    }

    #[test]
    fn higher_sn_forces_checkpoint() {
        let mut b = Bcs::new();
        let out = b.on_receive(0, &Piggyback::Index { sn: 3 });
        assert_eq!(out.forced, Some(3));
        assert_eq!(b.sn(), 3);
    }

    #[test]
    fn equal_or_lower_sn_does_not_force() {
        let mut b = Bcs::new();
        b.on_basic(BasicReason::CellSwitch); // sn = 1
        assert_eq!(b.on_receive(0, &Piggyback::Index { sn: 1 }).forced, None);
        assert_eq!(b.on_receive(0, &Piggyback::Index { sn: 0 }).forced, None);
        assert_eq!(b.sn(), 1);
    }

    #[test]
    fn basic_checkpoint_increments_sn() {
        let mut b = Bcs::new();
        let c1 = b.on_basic(BasicReason::CellSwitch);
        assert_eq!(c1.index, 1);
        assert!(!c1.replaces_predecessor);
        let c2 = b.on_basic(BasicReason::Disconnect);
        assert_eq!(c2.index, 2);
    }

    #[test]
    fn forced_checkpoint_jumps_to_message_sn() {
        let mut b = Bcs::new();
        b.on_receive(0, &Piggyback::Index { sn: 10 });
        // A subsequent basic checkpoint continues from the jumped value.
        assert_eq!(b.on_basic(BasicReason::CellSwitch).index, 11);
    }

    #[test]
    fn piggyback_is_one_integer() {
        let b = Bcs::new();
        assert_eq!(b.piggyback_bytes(), 4);
    }

    #[test]
    #[should_panic(expected = "Index piggybacks")]
    fn rejects_wrong_piggyback() {
        Bcs::new().on_receive(0, &Piggyback::None);
    }
}
