//! The two-phase-based protocol TP (Acharya–Badrinath).
//!
//! TP adapts Russell's protocol to mobile systems. Each host keeps a
//! `phase` flag:
//!
//! * **send**: `phase := SEND`;
//! * **receive**: if `phase = SEND`, take a *forced* checkpoint (before
//!   delivery) and set `phase := RECV`.
//!
//! A checkpoint therefore separates every "burst of sends" from the next
//! receive, which is exactly the pattern that prevents orphan messages:
//! no message can be received in a state that causally precedes its send's
//! checkpoint interval.
//!
//! To associate each checkpoint with a consistent global checkpoint on the
//! fly, TP piggybacks two vectors of `n` integers on **every** application
//! message (Acharya and Badrinath prove the vector is necessary for this
//! protocol):
//!
//! * `CKPT[]` — transitive dependency vector over checkpoint indices:
//!   `CKPT_i[j] = p` means the current state of `h_i` depends on the `p`-th
//!   checkpoint of `h_j`;
//! * `LOC[]`  — `LOC_i[j] = q` means that checkpoint is stored at MSS `q`,
//!   enabling efficient retrieval over the wired network.
//!
//! The vector piggyback is TP's scalability weakness: control information
//! grows linearly with the number of hosts (the paper's point (3)/(f)).

use std::sync::Arc;

use crate::piggyback::{Piggyback, INT_BYTES};
use crate::protocol::{BasicCkpt, BasicReason, Protocol, ReceiveOutcome};

/// The two phases of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The host has sent since its last checkpoint/receive: the next receive
    /// forces a checkpoint.
    Send,
    /// Safe to receive without checkpointing.
    Recv,
}

/// The frozen on-the-wire form of `(ckpt, loc)`: cheaply cloneable shared
/// slices handed to every outgoing message.
type WireVectors = (Arc<[u64]>, Arc<[u32]>);

/// Per-host TP state.
#[derive(Debug, Clone)]
pub struct Tp {
    /// This host's flat index.
    me: usize,
    phase: Phase,
    /// Checkpoints taken so far (the index of the latest checkpoint);
    /// doubles as `ckpt[me]`.
    count: u64,
    /// Transitive dependency vector on checkpoint indices.
    ckpt: Vec<u64>,
    /// MSS locations of the checkpoints in `ckpt`.
    loc: Vec<u32>,
    /// Current MSS of this host.
    here: u32,
    /// Frozen copy of `(ckpt, loc)` for the wire, shared by every send
    /// until a checkpoint or merge changes the vectors (copy-on-write:
    /// sends are far more frequent than checkpoints, so most sends are two
    /// refcount bumps instead of two `Vec` clones).
    wire: Option<WireVectors>,
    /// Ablation switch: reset `phase` to RECV when a basic checkpoint is
    /// taken. The paper's pseudo-code does **not** do this (only a receive
    /// resets the phase), so the faithful default is `false`; resetting is
    /// safe (a checkpoint protects the preceding sends just as well) and
    /// strictly reduces forced checkpoints, making it a natural ablation.
    reset_phase_on_basic: bool,
}

impl Tp {
    /// A fresh instance for host `me` of `n` hosts, currently at MSS `mss`,
    /// with the paper-faithful basic-checkpoint behaviour.
    pub fn new(me: usize, n: usize, mss: u32) -> Self {
        Self::with_options(me, n, mss, false)
    }

    /// Like [`Tp::new`], optionally enabling the phase-reset-on-basic
    /// ablation.
    pub fn with_options(me: usize, n: usize, mss: u32, reset_phase_on_basic: bool) -> Self {
        assert!(me < n, "host index {me} out of range for {n} hosts");
        let mut loc = vec![0; n];
        loc[me] = mss;
        Tp {
            me,
            phase: Phase::Recv, // the paper's init: phase := RECV
            count: 0,
            ckpt: vec![0; n],
            loc,
            here: mss,
            wire: None,
            reset_phase_on_basic,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Number of checkpoints taken (index of the latest one).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The transitive dependency vector (`CKPT[]`).
    pub fn ckpt_vector(&self) -> &[u64] {
        &self.ckpt
    }

    /// The location vector (`LOC[]`).
    pub fn loc_vector(&self) -> &[u32] {
        &self.loc
    }

    fn take_checkpoint(&mut self) -> u64 {
        self.count += 1;
        self.ckpt[self.me] = self.count;
        self.loc[self.me] = self.here;
        self.wire = None;
        self.count
    }

    /// Merges an incoming message's dependency vectors (after any forced
    /// checkpoint; the checkpoint snapshots the pre-merge vectors, exactly
    /// as recording them on stable storage *at checkpoint time* requires).
    fn merge(&mut self, ckpt: &[u64], loc: &[u32]) {
        assert_eq!(ckpt.len(), self.ckpt.len(), "CKPT vector width mismatch");
        assert_eq!(loc.len(), self.loc.len(), "LOC vector width mismatch");
        for j in 0..self.ckpt.len() {
            if j != self.me && ckpt[j] > self.ckpt[j] {
                self.ckpt[j] = ckpt[j];
                self.loc[j] = loc[j];
                self.wire = None;
            }
        }
    }
}

impl Protocol for Tp {
    fn name(&self) -> &'static str {
        "TP"
    }

    fn on_send(&mut self, _to: usize) -> Piggyback {
        self.phase = Phase::Send;
        if self.wire.is_none() {
            self.wire = Some((
                self.ckpt.as_slice().into(),
                self.loc.as_slice().into(),
            ));
        }
        let (ckpt, loc) = self.wire.as_ref().expect("cache just filled");
        Piggyback::Vectors {
            ckpt: Arc::clone(ckpt),
            loc: Arc::clone(loc),
        }
    }

    fn on_receive(&mut self, _from: usize, pb: &Piggyback) -> ReceiveOutcome {
        let Piggyback::Vectors { ckpt, loc } = pb else {
            panic!("TP requires Vectors piggybacks on all messages");
        };
        let outcome = if self.phase == Phase::Send {
            let idx = self.take_checkpoint();
            self.phase = Phase::Recv;
            ReceiveOutcome::forced(idx)
        } else {
            ReceiveOutcome::NONE
        };
        self.merge(ckpt, loc);
        outcome
    }

    fn on_basic(&mut self, _reason: BasicReason) -> BasicCkpt {
        let index = self.take_checkpoint();
        if self.reset_phase_on_basic {
            self.phase = Phase::Recv;
        }
        BasicCkpt {
            index,
            replaces_predecessor: false,
        }
    }

    fn on_relocate(&mut self, mss: u32) {
        self.here = mss;
    }

    fn piggyback_bytes(&self) -> usize {
        2 * self.ckpt.len() * INT_BYTES
    }

    fn current_index(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pb(ckpt: Vec<u64>, loc: Vec<u32>) -> Piggyback {
        Piggyback::Vectors {
            ckpt: ckpt.into(),
            loc: loc.into(),
        }
    }

    #[test]
    fn initial_phase_is_recv() {
        let t = Tp::new(0, 3, 7);
        assert_eq!(t.phase(), Phase::Recv);
        assert_eq!(t.count(), 0);
        assert_eq!(t.loc_vector()[0], 7);
        assert_eq!(t.name(), "TP");
    }

    #[test]
    fn receive_in_recv_phase_takes_no_checkpoint() {
        let mut t = Tp::new(0, 2, 0);
        let out = t.on_receive(1, &pb(vec![0, 0], vec![0, 0]));
        assert_eq!(out.forced, None);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn receive_after_send_forces_checkpoint() {
        let mut t = Tp::new(0, 2, 0);
        t.on_send(1);
        assert_eq!(t.phase(), Phase::Send);
        let out = t.on_receive(1, &pb(vec![0, 0], vec![0, 0]));
        assert_eq!(out.forced, Some(1));
        assert_eq!(t.phase(), Phase::Recv);
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn send_burst_costs_one_checkpoint() {
        let mut t = Tp::new(0, 2, 0);
        for _ in 0..5 {
            t.on_send(1);
        }
        let out = t.on_receive(1, &pb(vec![0, 0], vec![0, 0]));
        assert_eq!(out.forced, Some(1));
        // Next receive without intervening send: free.
        let out2 = t.on_receive(1, &pb(vec![0, 0], vec![0, 0]));
        assert_eq!(out2.forced, None);
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn basic_checkpoint_keeps_send_phase_by_default() {
        // Paper-faithful behaviour: only a receive resets the phase, so the
        // receive after the basic checkpoint still forces one.
        let mut t = Tp::new(0, 2, 0);
        t.on_send(1);
        let c = t.on_basic(BasicReason::CellSwitch);
        assert_eq!(c.index, 1);
        assert!(!c.replaces_predecessor);
        assert_eq!(t.phase(), Phase::Send);
        assert_eq!(
            t.on_receive(1, &pb(vec![0, 0], vec![0, 0])).forced,
            Some(2)
        );
    }

    #[test]
    fn reset_phase_ablation_skips_redundant_forced_checkpoint() {
        let mut t = Tp::with_options(0, 2, 0, true);
        t.on_send(1);
        t.on_basic(BasicReason::CellSwitch);
        assert_eq!(t.phase(), Phase::Recv);
        assert_eq!(t.on_receive(1, &pb(vec![0, 0], vec![0, 0])).forced, None);
    }

    #[test]
    fn vectors_track_own_checkpoints_and_location() {
        let mut t = Tp::new(1, 3, 4);
        t.on_relocate(9);
        t.on_basic(BasicReason::CellSwitch);
        assert_eq!(t.ckpt_vector(), &[0, 1, 0]);
        assert_eq!(t.loc_vector()[1], 9);
    }

    #[test]
    fn merge_takes_componentwise_max_with_locations() {
        let mut t = Tp::new(0, 3, 0);
        t.on_receive(1, &pb(vec![5, 2, 7], vec![11, 12, 13]));
        // Own component (index 0) is never overwritten by a merge.
        assert_eq!(t.ckpt_vector(), &[0, 2, 7]);
        assert_eq!(t.loc_vector(), &[0, 12, 13]);
        // A later message with smaller entries changes nothing.
        t.on_receive(2, &pb(vec![9, 1, 3], vec![21, 22, 23]));
        assert_eq!(t.ckpt_vector(), &[0, 2, 7]);
        assert_eq!(t.loc_vector(), &[0, 12, 13]);
    }

    #[test]
    fn forced_checkpoint_snapshots_before_merge() {
        // The forced checkpoint belongs to the state BEFORE the incoming
        // message is delivered, so the message's dependencies must not leak
        // into it. We can observe this through the outcome index (1) while
        // the merge still happens for the post-delivery state.
        let mut t = Tp::new(0, 2, 0);
        t.on_send(1);
        let out = t.on_receive(1, &pb(vec![0, 3], vec![0, 8]));
        assert_eq!(out.forced, Some(1));
        assert_eq!(t.ckpt_vector(), &[1, 3]); // post-delivery state depends on both
    }

    #[test]
    fn piggyback_scales_with_n() {
        assert_eq!(Tp::new(0, 10, 0).piggyback_bytes(), 80);
        assert_eq!(Tp::new(0, 50, 0).piggyback_bytes(), 400);
    }

    #[test]
    fn send_piggybacks_current_vectors() {
        let mut t = Tp::new(0, 2, 3);
        t.on_basic(BasicReason::CellSwitch);
        match t.on_send(1) {
            Piggyback::Vectors { ckpt, loc } => {
                assert_eq!(&ckpt[..], &[1, 0]);
                assert_eq!(loc[0], 3);
            }
            other => panic!("expected vectors, got {other:?}"),
        }
    }

    #[test]
    fn repeated_sends_share_wire_vectors() {
        let mut t = Tp::new(0, 4, 0);
        let (a, b) = match (t.on_send(1), t.on_send(2)) {
            (Piggyback::Vectors { ckpt: a, .. }, Piggyback::Vectors { ckpt: b, .. }) => (a, b),
            other => panic!("expected vectors, got {other:?}"),
        };
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "sends between checkpoints must share one frozen copy"
        );
        // A checkpoint changes the vectors, so the cache must refresh.
        t.on_basic(BasicReason::CellSwitch);
        let c = match t.on_send(1) {
            Piggyback::Vectors { ckpt, .. } => ckpt,
            other => panic!("expected vectors, got {other:?}"),
        };
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(&c[..], &[1, 0, 0, 0]);
        // A receive (forced checkpoint + merge) must refresh the wire copy.
        t.on_receive(1, &pb(vec![0, 5, 0, 0], vec![0, 9, 0, 0]));
        let e = match t.on_send(1) {
            Piggyback::Vectors { ckpt, .. } => ckpt,
            other => panic!("expected vectors, got {other:?}"),
        };
        assert_eq!(&e[..], &[2, 5, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "Vectors piggybacks")]
    fn rejects_wrong_piggyback() {
        Tp::new(0, 2, 0).on_receive(1, &Piggyback::Index { sn: 1 });
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        Tp::new(0, 2, 0).on_receive(1, &pb(vec![0, 0, 0], vec![0, 0, 0]));
    }
}
