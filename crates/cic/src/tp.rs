//! The two-phase-based protocol TP (Acharya–Badrinath).
//!
//! TP adapts Russell's protocol to mobile systems. Each host keeps a
//! `phase` flag:
//!
//! * **send**: `phase := SEND`;
//! * **receive**: if `phase = SEND`, take a *forced* checkpoint (before
//!   delivery) and set `phase := RECV`.
//!
//! A checkpoint therefore separates every "burst of sends" from the next
//! receive, which is exactly the pattern that prevents orphan messages:
//! no message can be received in a state that causally precedes its send's
//! checkpoint interval.
//!
//! To associate each checkpoint with a consistent global checkpoint on the
//! fly, TP piggybacks two vectors of `n` integers on **every** application
//! message (Acharya and Badrinath prove the vector is necessary for this
//! protocol):
//!
//! * `CKPT[]` — transitive dependency vector over checkpoint indices:
//!   `CKPT_i[j] = p` means the current state of `h_i` depends on the `p`-th
//!   checkpoint of `h_j`;
//! * `LOC[]`  — `LOC_i[j] = q` means that checkpoint is stored at MSS `q`,
//!   enabling efficient retrieval over the wired network.
//!
//! The vector piggyback is TP's scalability weakness: control information
//! grows linearly with the number of hosts (the paper's point (3)/(f)).

use std::sync::Arc;

use crate::piggyback::{rle_encode, rle_encode_into, PbCodec, Piggyback, VecRun, INT_BYTES};
use crate::protocol::{BasicCkpt, BasicReason, Protocol, ReceiveOutcome};

/// The two phases of the protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// The host has sent since its last checkpoint/receive: the next receive
    /// forces a checkpoint.
    Send,
    /// Safe to receive without checkpointing.
    Recv,
}

/// The frozen on-the-wire form of `(ckpt, loc)`: cheaply cloneable shared
/// slices handed to every outgoing message.
type WireVectors = (Arc<[u64]>, Arc<[u32]>);

/// Per-host TP state.
#[derive(Debug, Clone)]
pub struct Tp {
    /// This host's flat index.
    me: usize,
    phase: Phase,
    /// Checkpoints taken so far (the index of the latest checkpoint);
    /// doubles as `ckpt[me]`.
    count: u64,
    /// Transitive dependency vector on checkpoint indices.
    ckpt: Vec<u64>,
    /// MSS locations of the checkpoints in `ckpt`.
    loc: Vec<u32>,
    /// Current MSS of this host.
    here: u32,
    /// Frozen copy of `(ckpt, loc)` for the wire, shared by every send
    /// until a checkpoint or merge changes the vectors (copy-on-write:
    /// sends are far more frequent than checkpoints, so most sends are two
    /// refcount bumps instead of two `Vec` clones). A stale cache is
    /// *overwritten in place* when no message still holds a clone —
    /// dropping and reallocating two `n`-integer slices per refresh is
    /// allocator churn that dominates large-N runs.
    wire: Option<WireVectors>,
    /// Whether the wire caches lag the live vectors and must be refreshed
    /// before the next send. One flag covers both caches: `codec` is fixed
    /// per instance, so only the matching cache is ever populated.
    wire_dirty: bool,
    /// Frozen RLE wire form, cached and reused in place under the same
    /// policy as `wire` (the `Vec`'s capacity survives re-encoding).
    wire_rle: Option<Arc<Vec<VecRun>>>,
    /// Dense encodings still referenced by in-flight messages at refresh
    /// time, parked for recycling once their last clone drains. Without
    /// this, every refresh that races an undelivered message allocates
    /// (and later frees) two `n`-integer slices — allocator churn that
    /// dominates wall time at large `n`.
    retired: Vec<WireVectors>,
    /// Same recycling pool for the RLE wire form.
    retired_rle: Vec<Arc<Vec<VecRun>>>,
    /// Which wire form `on_send` emits.
    codec: PbCodec,
    /// Ablation switch: reset `phase` to RECV when a basic checkpoint is
    /// taken. The paper's pseudo-code does **not** do this (only a receive
    /// resets the phase), so the faithful default is `false`; resetting is
    /// safe (a checkpoint protects the preceding sends just as well) and
    /// strictly reduces forced checkpoints, making it a natural ablation.
    reset_phase_on_basic: bool,
}

/// Bound on retired wire encodings parked per host for recycling; an
/// overflow entry is dropped instead (and frees once its in-flight clones
/// drain). Sized to the usual number of undelivered messages per host.
const RETIRED_CAP: usize = 4;

impl Tp {
    /// A fresh instance for host `me` of `n` hosts, currently at MSS `mss`,
    /// with the paper-faithful basic-checkpoint behaviour.
    pub fn new(me: usize, n: usize, mss: u32) -> Self {
        Self::with_options(me, n, mss, false)
    }

    /// Like [`Tp::new`], optionally enabling the phase-reset-on-basic
    /// ablation.
    pub fn with_options(me: usize, n: usize, mss: u32, reset_phase_on_basic: bool) -> Self {
        assert!(me < n, "host index {me} out of range for {n} hosts");
        let mut loc = vec![0; n];
        loc[me] = mss;
        Tp {
            me,
            phase: Phase::Recv, // the paper's init: phase := RECV
            count: 0,
            ckpt: vec![0; n],
            loc,
            here: mss,
            wire: None,
            wire_dirty: false,
            wire_rle: None,
            retired: Vec::new(),
            retired_rle: Vec::new(),
            codec: PbCodec::Dense,
            reset_phase_on_basic,
        }
    }

    /// Like [`Tp::new`], emitting the given wire codec on sends. The
    /// protocol state and the forced-checkpoint behaviour are identical
    /// under every codec; only the wire form (and its modelled byte cost)
    /// changes.
    pub fn with_codec(me: usize, n: usize, mss: u32, codec: PbCodec) -> Self {
        Tp {
            codec,
            ..Self::new(me, n, mss)
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Number of checkpoints taken (index of the latest one).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The transitive dependency vector (`CKPT[]`).
    pub fn ckpt_vector(&self) -> &[u64] {
        &self.ckpt
    }

    /// The location vector (`LOC[]`).
    pub fn loc_vector(&self) -> &[u32] {
        &self.loc
    }

    fn take_checkpoint(&mut self) -> u64 {
        self.count += 1;
        self.ckpt[self.me] = self.count;
        self.loc[self.me] = self.here;
        self.wire_dirty = true;
        self.count
    }

    /// Merges an incoming message's dependency vectors (after any forced
    /// checkpoint; the checkpoint snapshots the pre-merge vectors, exactly
    /// as recording them on stable storage *at checkpoint time* requires).
    fn merge(&mut self, ckpt: &[u64], loc: &[u32]) {
        assert_eq!(ckpt.len(), self.ckpt.len(), "CKPT vector width mismatch");
        assert_eq!(loc.len(), self.loc.len(), "LOC vector width mismatch");
        for j in 0..self.ckpt.len() {
            if j != self.me && ckpt[j] > self.ckpt[j] {
                self.ckpt[j] = ckpt[j];
                self.loc[j] = loc[j];
                self.wire_dirty = true;
            }
        }
    }

    /// Merges an RLE-coded message without expanding it: whole runs of
    /// zero entries (the bulk of the wire form at large `n`) are skipped
    /// outright, because the merge needs `incoming > own` and own entries
    /// are never negative. Equivalent to decode-then-[`Tp::merge`] — the
    /// parity proptests pin that.
    fn merge_runs(&mut self, runs: &[VecRun]) {
        let mut j = 0usize;
        for r in runs {
            let end = j + r.len as usize;
            assert!(end <= self.ckpt.len(), "CKPT vector width mismatch");
            if r.ckpt > 0 {
                for k in j..end {
                    if k != self.me && r.ckpt > self.ckpt[k] {
                        self.ckpt[k] = r.ckpt;
                        self.loc[k] = r.loc;
                        self.wire_dirty = true;
                    }
                }
            }
            j = end;
        }
        assert_eq!(j, self.ckpt.len(), "CKPT vector width mismatch");
    }

    /// Brings the dense wire cache up to date with the live vectors,
    /// recycling allocations wherever possible: overwrite in place when no
    /// clone is in flight, else revive a drained pool entry, else (and
    /// only then) allocate.
    fn refresh_dense_wire(&mut self) {
        if let Some((ckpt, loc)) = &mut self.wire {
            if let (Some(c), Some(l)) = (Arc::get_mut(ckpt), Arc::get_mut(loc)) {
                c.copy_from_slice(&self.ckpt);
                l.copy_from_slice(&self.loc);
                return;
            }
        }
        if let Some(old) = self.wire.take() {
            self.retired.push(old);
        }
        let drained = (0..self.retired.len()).find(|&i| {
            let (c, l) = &self.retired[i];
            Arc::strong_count(c) == 1 && Arc::strong_count(l) == 1
        });
        self.wire = Some(match drained {
            Some(i) => {
                let (mut c, mut l) = self.retired.swap_remove(i);
                Arc::get_mut(&mut c)
                    .expect("drained entry has a sole owner")
                    .copy_from_slice(&self.ckpt);
                Arc::get_mut(&mut l)
                    .expect("drained entry has a sole owner")
                    .copy_from_slice(&self.loc);
                (c, l)
            }
            None => (self.ckpt.as_slice().into(), self.loc.as_slice().into()),
        });
        // Keep the pool no deeper than the usual in-flight depth; an
        // overflow entry frees once its last clone drains.
        if self.retired.len() > RETIRED_CAP {
            self.retired.remove(0);
        }
    }

    /// [`Tp::refresh_dense_wire`] for the RLE form: re-encoding into a
    /// retained `Vec` reuses its capacity, so steady-state refreshes are
    /// allocation-free even though run counts vary.
    fn refresh_rle_wire(&mut self) {
        if let Some(runs) = &mut self.wire_rle {
            if let Some(buf) = Arc::get_mut(runs) {
                rle_encode_into(&self.ckpt, &self.loc, buf);
                return;
            }
        }
        if let Some(old) = self.wire_rle.take() {
            self.retired_rle.push(old);
        }
        let drained =
            (0..self.retired_rle.len()).find(|&i| Arc::strong_count(&self.retired_rle[i]) == 1);
        self.wire_rle = Some(match drained {
            Some(i) => {
                let mut runs = self.retired_rle.swap_remove(i);
                let buf = Arc::get_mut(&mut runs).expect("drained entry has a sole owner");
                rle_encode_into(&self.ckpt, &self.loc, buf);
                runs
            }
            None => Arc::new(rle_encode(&self.ckpt, &self.loc)),
        });
        if self.retired_rle.len() > RETIRED_CAP {
            self.retired_rle.remove(0);
        }
    }
}

impl Protocol for Tp {
    fn name(&self) -> &'static str {
        "TP"
    }

    fn on_send(&mut self, _to: usize) -> Piggyback {
        self.phase = Phase::Send;
        match self.codec {
            PbCodec::Dense => {
                if self.wire_dirty || self.wire.is_none() {
                    self.refresh_dense_wire();
                    self.wire_dirty = false;
                }
                let (ckpt, loc) = self.wire.as_ref().expect("cache just refreshed");
                Piggyback::Vectors {
                    ckpt: Arc::clone(ckpt),
                    loc: Arc::clone(loc),
                }
            }
            PbCodec::Rle => {
                if self.wire_dirty || self.wire_rle.is_none() {
                    self.refresh_rle_wire();
                    self.wire_dirty = false;
                }
                Piggyback::VectorsRle {
                    runs: Arc::clone(self.wire_rle.as_ref().expect("cache just refreshed")),
                }
            }
        }
    }

    fn on_receive(&mut self, _from: usize, pb: &Piggyback) -> ReceiveOutcome {
        let outcome = if self.phase == Phase::Send {
            let idx = self.take_checkpoint();
            self.phase = Phase::Recv;
            ReceiveOutcome::forced(idx)
        } else {
            ReceiveOutcome::NONE
        };
        // Either wire form merges; a mixed-codec population is legal.
        match pb {
            Piggyback::Vectors { ckpt, loc } => self.merge(ckpt, loc),
            Piggyback::VectorsRle { runs } => self.merge_runs(runs),
            _ => panic!("TP requires Vectors piggybacks on all messages"),
        }
        outcome
    }

    fn on_basic(&mut self, _reason: BasicReason) -> BasicCkpt {
        let index = self.take_checkpoint();
        if self.reset_phase_on_basic {
            self.phase = Phase::Recv;
        }
        BasicCkpt {
            index,
            replaces_predecessor: false,
        }
    }

    fn on_relocate(&mut self, mss: u32) {
        self.here = mss;
    }

    fn piggyback_bytes(&self) -> usize {
        match self.codec {
            PbCodec::Dense => 2 * self.ckpt.len() * INT_BYTES,
            // Reporting path (not per-event): encode afresh rather than
            // holding a cache borrow through a `&self` accessor.
            PbCodec::Rle => (1 + 3 * rle_encode(&self.ckpt, &self.loc).len()) * INT_BYTES,
        }
    }

    fn current_index(&self) -> u64 {
        self.count
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn state_sig(&self, out: &mut Vec<u64>) {
        out.push(match self.phase {
            Phase::Send => 1,
            Phase::Recv => 0,
        });
        out.push(self.count);
        out.extend_from_slice(&self.ckpt);
        out.extend(self.loc.iter().map(|&l| u64::from(l)));
        out.push(u64::from(self.here));
        // The wire caches, retire pools and dirty flag are derived from the
        // vectors above and deliberately excluded: states that differ only
        // in cache freshness behave identically.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pb(ckpt: Vec<u64>, loc: Vec<u32>) -> Piggyback {
        Piggyback::Vectors {
            ckpt: ckpt.into(),
            loc: loc.into(),
        }
    }

    #[test]
    fn initial_phase_is_recv() {
        let t = Tp::new(0, 3, 7);
        assert_eq!(t.phase(), Phase::Recv);
        assert_eq!(t.count(), 0);
        assert_eq!(t.loc_vector()[0], 7);
        assert_eq!(t.name(), "TP");
    }

    #[test]
    fn receive_in_recv_phase_takes_no_checkpoint() {
        let mut t = Tp::new(0, 2, 0);
        let out = t.on_receive(1, &pb(vec![0, 0], vec![0, 0]));
        assert_eq!(out.forced, None);
        assert_eq!(t.count(), 0);
    }

    #[test]
    fn receive_after_send_forces_checkpoint() {
        let mut t = Tp::new(0, 2, 0);
        t.on_send(1);
        assert_eq!(t.phase(), Phase::Send);
        let out = t.on_receive(1, &pb(vec![0, 0], vec![0, 0]));
        assert_eq!(out.forced, Some(1));
        assert_eq!(t.phase(), Phase::Recv);
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn send_burst_costs_one_checkpoint() {
        let mut t = Tp::new(0, 2, 0);
        for _ in 0..5 {
            t.on_send(1);
        }
        let out = t.on_receive(1, &pb(vec![0, 0], vec![0, 0]));
        assert_eq!(out.forced, Some(1));
        // Next receive without intervening send: free.
        let out2 = t.on_receive(1, &pb(vec![0, 0], vec![0, 0]));
        assert_eq!(out2.forced, None);
        assert_eq!(t.count(), 1);
    }

    #[test]
    fn basic_checkpoint_keeps_send_phase_by_default() {
        // Paper-faithful behaviour: only a receive resets the phase, so the
        // receive after the basic checkpoint still forces one.
        let mut t = Tp::new(0, 2, 0);
        t.on_send(1);
        let c = t.on_basic(BasicReason::CellSwitch);
        assert_eq!(c.index, 1);
        assert!(!c.replaces_predecessor);
        assert_eq!(t.phase(), Phase::Send);
        assert_eq!(
            t.on_receive(1, &pb(vec![0, 0], vec![0, 0])).forced,
            Some(2)
        );
    }

    #[test]
    fn reset_phase_ablation_skips_redundant_forced_checkpoint() {
        let mut t = Tp::with_options(0, 2, 0, true);
        t.on_send(1);
        t.on_basic(BasicReason::CellSwitch);
        assert_eq!(t.phase(), Phase::Recv);
        assert_eq!(t.on_receive(1, &pb(vec![0, 0], vec![0, 0])).forced, None);
    }

    #[test]
    fn vectors_track_own_checkpoints_and_location() {
        let mut t = Tp::new(1, 3, 4);
        t.on_relocate(9);
        t.on_basic(BasicReason::CellSwitch);
        assert_eq!(t.ckpt_vector(), &[0, 1, 0]);
        assert_eq!(t.loc_vector()[1], 9);
    }

    #[test]
    fn merge_takes_componentwise_max_with_locations() {
        let mut t = Tp::new(0, 3, 0);
        t.on_receive(1, &pb(vec![5, 2, 7], vec![11, 12, 13]));
        // Own component (index 0) is never overwritten by a merge.
        assert_eq!(t.ckpt_vector(), &[0, 2, 7]);
        assert_eq!(t.loc_vector(), &[0, 12, 13]);
        // A later message with smaller entries changes nothing.
        t.on_receive(2, &pb(vec![9, 1, 3], vec![21, 22, 23]));
        assert_eq!(t.ckpt_vector(), &[0, 2, 7]);
        assert_eq!(t.loc_vector(), &[0, 12, 13]);
    }

    #[test]
    fn forced_checkpoint_snapshots_before_merge() {
        // The forced checkpoint belongs to the state BEFORE the incoming
        // message is delivered, so the message's dependencies must not leak
        // into it. We can observe this through the outcome index (1) while
        // the merge still happens for the post-delivery state.
        let mut t = Tp::new(0, 2, 0);
        t.on_send(1);
        let out = t.on_receive(1, &pb(vec![0, 3], vec![0, 8]));
        assert_eq!(out.forced, Some(1));
        assert_eq!(t.ckpt_vector(), &[1, 3]); // post-delivery state depends on both
    }

    #[test]
    fn piggyback_scales_with_n() {
        assert_eq!(Tp::new(0, 10, 0).piggyback_bytes(), 80);
        assert_eq!(Tp::new(0, 50, 0).piggyback_bytes(), 400);
    }

    #[test]
    fn send_piggybacks_current_vectors() {
        let mut t = Tp::new(0, 2, 3);
        t.on_basic(BasicReason::CellSwitch);
        match t.on_send(1) {
            Piggyback::Vectors { ckpt, loc } => {
                assert_eq!(&ckpt[..], &[1, 0]);
                assert_eq!(loc[0], 3);
            }
            other => panic!("expected vectors, got {other:?}"),
        }
    }

    #[test]
    fn repeated_sends_share_wire_vectors() {
        let mut t = Tp::new(0, 4, 0);
        let (a, b) = match (t.on_send(1), t.on_send(2)) {
            (Piggyback::Vectors { ckpt: a, .. }, Piggyback::Vectors { ckpt: b, .. }) => (a, b),
            other => panic!("expected vectors, got {other:?}"),
        };
        assert!(
            std::sync::Arc::ptr_eq(&a, &b),
            "sends between checkpoints must share one frozen copy"
        );
        // A checkpoint changes the vectors, so the cache must refresh.
        t.on_basic(BasicReason::CellSwitch);
        let c = match t.on_send(1) {
            Piggyback::Vectors { ckpt, .. } => ckpt,
            other => panic!("expected vectors, got {other:?}"),
        };
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(&c[..], &[1, 0, 0, 0]);
        // A receive (forced checkpoint + merge) must refresh the wire copy.
        t.on_receive(1, &pb(vec![0, 5, 0, 0], vec![0, 9, 0, 0]));
        let e = match t.on_send(1) {
            Piggyback::Vectors { ckpt, .. } => ckpt,
            other => panic!("expected vectors, got {other:?}"),
        };
        assert_eq!(&e[..], &[2, 5, 0, 0]);
    }

    #[test]
    fn rle_codec_emits_compressed_vectors() {
        let mut t = Tp::with_codec(0, 100, 3, PbCodec::Rle);
        t.on_basic(BasicReason::CellSwitch);
        match t.on_send(1) {
            Piggyback::VectorsRle { runs } => {
                // [me: 1@3][99 zero entries] = 2 runs = 7 integers.
                assert_eq!(runs.len(), 2);
                let (ckpt, loc) = crate::piggyback::rle_decode(&runs);
                assert_eq!(ckpt[0], 1);
                assert_eq!(loc[0], 3);
                assert!(ckpt[1..].iter().all(|&c| c == 0));
            }
            other => panic!("expected RLE vectors, got {other:?}"),
        }
        assert_eq!(t.piggyback_bytes(), 7 * INT_BYTES);
    }

    #[test]
    fn rle_sends_share_the_frozen_encoding() {
        let mut t = Tp::with_codec(0, 8, 0, PbCodec::Rle);
        let (a, b) = match (t.on_send(1), t.on_send(2)) {
            (Piggyback::VectorsRle { runs: a }, Piggyback::VectorsRle { runs: b }) => (a, b),
            other => panic!("expected RLE vectors, got {other:?}"),
        };
        assert!(Arc::ptr_eq(&a, &b), "sends between changes share one encoding");
        t.on_basic(BasicReason::CellSwitch);
        let c = match t.on_send(1) {
            Piggyback::VectorsRle { runs } => runs,
            other => panic!("expected RLE vectors, got {other:?}"),
        };
        assert!(!Arc::ptr_eq(&a, &c), "a checkpoint refreshes the encoding");
    }

    #[test]
    fn wire_caches_are_reused_in_place_once_clones_drop() {
        // Dense: when no message still holds the previous encoding, a
        // refresh overwrites the same allocation instead of replacing it.
        let mut t = Tp::new(0, 16, 0);
        let dense_ptr = match t.on_send(1) {
            Piggyback::Vectors { ckpt, .. } => Arc::as_ptr(&ckpt),
            other => panic!("expected dense vectors, got {other:?}"),
        };
        t.on_basic(BasicReason::CellSwitch);
        match t.on_send(1) {
            Piggyback::Vectors { ckpt, .. } => {
                assert_eq!(Arc::as_ptr(&ckpt), dense_ptr, "dense cache must be reused");
                assert_eq!(ckpt[0], 1, "reused cache must carry the fresh vectors");
            }
            other => panic!("expected dense vectors, got {other:?}"),
        }

        // RLE: same policy; the Vec's buffer is re-encoded in place.
        let mut t = Tp::with_codec(0, 16, 0, PbCodec::Rle);
        let rle_ptr = match t.on_send(1) {
            Piggyback::VectorsRle { runs } => Arc::as_ptr(&runs),
            other => panic!("expected RLE vectors, got {other:?}"),
        };
        t.on_basic(BasicReason::CellSwitch);
        match t.on_send(1) {
            Piggyback::VectorsRle { runs } => {
                assert_eq!(Arc::as_ptr(&runs), rle_ptr, "RLE cache must be reused");
                assert_eq!(runs[0].ckpt, 1, "reused cache must carry the fresh runs");
            }
            other => panic!("expected RLE vectors, got {other:?}"),
        }
    }

    #[test]
    fn mixed_codec_receive_merges_identically() {
        let ckpt = vec![0, 4, 0, 9];
        let loc = vec![0, 2, 0, 5];
        let mut dense_rx = Tp::new(0, 4, 0);
        dense_rx.on_receive(1, &pb(ckpt.clone(), loc.clone()));
        let mut rle_rx = Tp::new(0, 4, 0);
        rle_rx.on_receive(
            1,
            &Piggyback::VectorsRle { runs: Arc::new(crate::piggyback::rle_encode(&ckpt, &loc)) },
        );
        assert_eq!(dense_rx.ckpt_vector(), rle_rx.ckpt_vector());
        assert_eq!(dense_rx.loc_vector(), rle_rx.loc_vector());
    }

    #[test]
    fn run_merge_never_overwrites_own_component() {
        // A single run covering everyone (including me) with a huge index:
        // my own entry must survive.
        let mut t = Tp::with_codec(1, 5, 0, PbCodec::Rle);
        t.on_basic(BasicReason::CellSwitch);
        t.on_receive(
            0,
            &Piggyback::VectorsRle {
                runs: Arc::new(crate::piggyback::rle_encode(&[9; 5], &[7; 5])),
            },
        );
        assert_eq!(t.ckpt_vector(), &[9, 1, 9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn run_merge_rejects_wrong_width() {
        let runs = Arc::new(crate::piggyback::rle_encode(&[0, 0, 0], &[0, 0, 0]));
        Tp::new(0, 2, 0).on_receive(1, &Piggyback::VectorsRle { runs });
    }

    #[test]
    #[should_panic(expected = "Vectors piggybacks")]
    fn rejects_wrong_piggyback() {
        Tp::new(0, 2, 0).on_receive(1, &Piggyback::Index { sn: 1 });
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        Tp::new(0, 2, 0).on_receive(1, &pb(vec![0, 0, 0], vec![0, 0, 0]));
    }
}
