//! Control information piggybacked on application messages.
//!
//! Communication-induced protocols coordinate *lazily*: instead of dedicated
//! control messages, they attach control information to every application
//! message. The paper's scalability argument (Section 4) hinges on the size
//! of this information:
//!
//! * the index-based protocols (BCS, QBC) attach a **single integer** — the
//!   sender's checkpoint sequence number — so they scale with the number of
//!   hosts;
//! * the two-phase protocol (TP) attaches **two vectors of `n` integers**
//!   (`CKPT[]`, the transitive dependency vector on checkpoint intervals,
//!   and `LOC[]`, the MSS locations of those checkpoints), so its overhead
//!   grows linearly with the number of hosts.
//!
//! In the simulator the TP vectors are shared `Arc` slices: the protocol
//! state caches one frozen copy and every send clones the `Arc` (a
//! refcount bump) instead of the two `Vec`s, invalidating the cache only
//! when a checkpoint or merge actually changes the vectors. The *modelled*
//! wire size is unchanged — [`Piggyback::wire_bytes`] still charges the
//! full `2n` integers.

use std::sync::Arc;

/// Control data attached to one application message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piggyback {
    /// No control information (uncoordinated baseline).
    None,
    /// The sender's checkpoint sequence number (BCS, QBC).
    Index {
        /// Sequence number `sn` of the sender at send time.
        sn: u64,
    },
    /// TP's transitive dependency vectors (shared, copy-on-write).
    Vectors {
        /// `CKPT[]`: for each host, the latest checkpoint index of that host
        /// the sender's state transitively depends on.
        ckpt: Arc<[u64]>,
        /// `LOC[]`: for each host, the MSS holding that checkpoint.
        loc: Arc<[u32]>,
    },
    /// Dependency bit set (Prakash–Singhal-style minimal coordination):
    /// which hosts the sender has causal dependencies on since its last
    /// coordinated checkpoint.
    DepSet {
        /// One bit per host.
        deps: Vec<bool>,
    },
}

/// Bytes assumed per integer on the wire; the paper speaks of "vectors of
/// integers", which we cost at four bytes each.
pub const INT_BYTES: usize = 4;

impl Piggyback {
    /// Wire size of the control information in bytes.
    ///
    /// This is the quantity behind the paper's point (b)/(d)/(e) discussion:
    /// every piggybacked byte crosses the wireless link and costs energy and
    /// channel capacity.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Piggyback::None => 0,
            Piggyback::Index { .. } => INT_BYTES,
            Piggyback::Vectors { ckpt, loc } => (ckpt.len() + loc.len()) * INT_BYTES,
            // One bit per host, rounded up to whole bytes.
            Piggyback::DepSet { deps } => deps.len().div_ceil(8),
        }
    }

    /// The sequence number carried, if this is an index piggyback.
    pub fn index(&self) -> Option<u64> {
        match self {
            Piggyback::Index { sn } => Some(*sn),
            _ => None,
        }
    }

    /// Static label for this piggyback's variant, suitable as a span or
    /// metric name: cost-attribution tooling groups encode/decode work by
    /// the control-information *shape* (the axis the paper's scalability
    /// argument varies), not by protocol name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Piggyback::None => "none",
            Piggyback::Index { .. } => "index",
            Piggyback::Vectors { .. } => "vectors",
            Piggyback::DepSet { .. } => "depset",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_one_integer() {
        assert_eq!(Piggyback::Index { sn: 7 }.wire_bytes(), 4);
        assert_eq!(Piggyback::Index { sn: 7 }.index(), Some(7));
    }

    #[test]
    fn none_is_free() {
        assert_eq!(Piggyback::None.wire_bytes(), 0);
        assert_eq!(Piggyback::None.index(), None);
    }

    #[test]
    fn tp_vectors_scale_with_hosts() {
        let pb = Piggyback::Vectors {
            ckpt: vec![0; 10].into(),
            loc: vec![0; 10].into(),
        };
        assert_eq!(pb.wire_bytes(), 80); // 2 × 10 × 4 bytes
        let pb_large = Piggyback::Vectors {
            ckpt: vec![0; 100].into(),
            loc: vec![0; 100].into(),
        };
        assert_eq!(pb_large.wire_bytes(), 800);
    }

    #[test]
    fn cloning_vectors_shares_storage() {
        let pb = Piggyback::Vectors {
            ckpt: vec![1, 2, 3].into(),
            loc: vec![4, 5, 6].into(),
        };
        let copy = pb.clone();
        assert_eq!(pb, copy);
        let (Piggyback::Vectors { ckpt: a, .. }, Piggyback::Vectors { ckpt: b, .. }) =
            (&pb, &copy)
        else {
            unreachable!()
        };
        assert!(Arc::ptr_eq(a, b), "clone must be a refcount bump, not a copy");
    }

    #[test]
    fn kind_names_are_distinct_static_labels() {
        let variants = [
            Piggyback::None,
            Piggyback::Index { sn: 1 },
            Piggyback::Vectors { ckpt: vec![0; 2].into(), loc: vec![0; 2].into() },
            Piggyback::DepSet { deps: vec![true] },
        ];
        let names: Vec<&str> = variants.iter().map(Piggyback::kind_name).collect();
        assert_eq!(names, ["none", "index", "vectors", "depset"]);
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn depset_is_bits() {
        assert_eq!(Piggyback::DepSet { deps: vec![false; 8] }.wire_bytes(), 1);
        assert_eq!(Piggyback::DepSet { deps: vec![false; 9] }.wire_bytes(), 2);
        assert_eq!(Piggyback::DepSet { deps: vec![] }.wire_bytes(), 0);
    }
}
