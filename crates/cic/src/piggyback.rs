//! Control information piggybacked on application messages.
//!
//! Communication-induced protocols coordinate *lazily*: instead of dedicated
//! control messages, they attach control information to every application
//! message. The paper's scalability argument (Section 4) hinges on the size
//! of this information:
//!
//! * the index-based protocols (BCS, QBC) attach a **single integer** — the
//!   sender's checkpoint sequence number — so they scale with the number of
//!   hosts;
//! * the two-phase protocol (TP) attaches **two vectors of `n` integers**
//!   (`CKPT[]`, the transitive dependency vector on checkpoint intervals,
//!   and `LOC[]`, the MSS locations of those checkpoints), so its overhead
//!   grows linearly with the number of hosts.
//!
//! In the simulator the TP vectors are shared `Arc` slices: the protocol
//! state caches one frozen copy and every send clones the `Arc` (a
//! refcount bump) instead of the two `Vec`s, invalidating the cache only
//! when a checkpoint or merge actually changes the vectors. The *modelled*
//! wire size is unchanged — [`Piggyback::wire_bytes`] still charges the
//! full `2n` integers.
//!
//! At large `n` almost all of `CKPT[]`/`LOC[]` is runs of identical values
//! (a host only accumulates dependencies on the hosts it actually heard
//! from), so the optional **run-length wire codec** ([`PbCodec::Rle`],
//! carried as [`Piggyback::VectorsRle`]) drops the modelled wire size from
//! `O(n)` per message to `O(runs)`. The encoding is lossless — decode
//! reproduces the dense vectors exactly — and the dense codec remains the
//! byte-identical default.

use std::sync::Arc;

/// Wire codec for TP's dependency-vector piggybacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PbCodec {
    /// The paper's dense form: two flat vectors of `n` integers.
    #[default]
    Dense,
    /// Run-length interval coding over aligned `(ckpt, loc)` runs.
    Rle,
}

impl PbCodec {
    /// Display/CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PbCodec::Dense => "dense",
            PbCodec::Rle => "rle",
        }
    }

    /// Parses a codec name (case-insensitive).
    pub fn parse(s: &str) -> Option<PbCodec> {
        match s.to_ascii_lowercase().as_str() {
            "dense" => Some(PbCodec::Dense),
            "rle" => Some(PbCodec::Rle),
            _ => None,
        }
    }
}

/// One run of the RLE wire form: `len` consecutive hosts sharing the same
/// `(ckpt, loc)` dependency entry. On the wire a run is three integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VecRun {
    /// Number of consecutive hosts covered.
    pub len: u32,
    /// Their common `CKPT[]` entry.
    pub ckpt: u64,
    /// Their common `LOC[]` entry.
    pub loc: u32,
}

/// Run-length encodes aligned `(ckpt, loc)` vectors. Lossless:
/// [`rle_decode`] inverts it exactly; run lengths sum to `ckpt.len()`.
pub fn rle_encode(ckpt: &[u64], loc: &[u32]) -> Vec<VecRun> {
    let mut runs = Vec::new();
    rle_encode_into(ckpt, loc, &mut runs);
    runs
}

/// [`rle_encode`] into a caller-owned buffer, reusing its capacity. The
/// TP wire cache refreshes after nearly every merge at large `n`; encoding
/// in place keeps that refresh allocation-free once the buffer has grown.
pub fn rle_encode_into(ckpt: &[u64], loc: &[u32], out: &mut Vec<VecRun>) {
    assert_eq!(ckpt.len(), loc.len(), "CKPT/LOC width mismatch");
    out.clear();
    for (&c, &l) in ckpt.iter().zip(loc) {
        match out.last_mut() {
            Some(r) if r.ckpt == c && r.loc == l && r.len < u32::MAX => r.len += 1,
            _ => out.push(VecRun { len: 1, ckpt: c, loc: l }),
        }
    }
}

/// Expands an RLE piggyback back to the dense vectors.
pub fn rle_decode(runs: &[VecRun]) -> (Vec<u64>, Vec<u32>) {
    let n: usize = runs.iter().map(|r| r.len as usize).sum();
    let mut ckpt = Vec::with_capacity(n);
    let mut loc = Vec::with_capacity(n);
    for r in runs {
        for _ in 0..r.len {
            ckpt.push(r.ckpt);
            loc.push(r.loc);
        }
    }
    (ckpt, loc)
}

/// Control data attached to one application message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Piggyback {
    /// No control information (uncoordinated baseline).
    None,
    /// The sender's checkpoint sequence number (BCS, QBC).
    Index {
        /// Sequence number `sn` of the sender at send time.
        sn: u64,
    },
    /// TP's transitive dependency vectors (shared, copy-on-write).
    Vectors {
        /// `CKPT[]`: for each host, the latest checkpoint index of that host
        /// the sender's state transitively depends on.
        ckpt: Arc<[u64]>,
        /// `LOC[]`: for each host, the MSS holding that checkpoint.
        loc: Arc<[u32]>,
    },
    /// TP's dependency vectors in the run-length wire form ([`PbCodec::Rle`]):
    /// the same information as [`Piggyback::Vectors`], charged at
    /// `O(runs)` instead of `O(n)` integers.
    VectorsRle {
        /// Aligned `(ckpt, loc)` runs covering all `n` hosts. An
        /// `Arc<Vec<..>>` rather than `Arc<[..]>` so the sender's wire
        /// cache can re-encode into the same allocation once every
        /// in-flight clone has been dropped (run counts vary per refresh,
        /// so a slice could never be reused).
        runs: Arc<Vec<VecRun>>,
    },
    /// Dependency bit set (Prakash–Singhal-style minimal coordination):
    /// which hosts the sender has causal dependencies on since its last
    /// coordinated checkpoint.
    DepSet {
        /// One bit per host.
        deps: Vec<bool>,
    },
}

/// Bytes assumed per integer on the wire; the paper speaks of "vectors of
/// integers", which we cost at four bytes each.
pub const INT_BYTES: usize = 4;

impl Piggyback {
    /// Wire size of the control information in bytes.
    ///
    /// This is the quantity behind the paper's point (b)/(d)/(e) discussion:
    /// every piggybacked byte crosses the wireless link and costs energy and
    /// channel capacity.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Piggyback::None => 0,
            Piggyback::Index { .. } => INT_BYTES,
            Piggyback::Vectors { ckpt, loc } => (ckpt.len() + loc.len()) * INT_BYTES,
            // One integer announcing the run count, then three integers
            // (len, ckpt, loc) per run.
            Piggyback::VectorsRle { runs } => (1 + 3 * runs.len()) * INT_BYTES,
            // One bit per host, rounded up to whole bytes.
            Piggyback::DepSet { deps } => deps.len().div_ceil(8),
        }
    }

    /// The sequence number carried, if this is an index piggyback.
    pub fn index(&self) -> Option<u64> {
        match self {
            Piggyback::Index { sn } => Some(*sn),
            _ => None,
        }
    }

    /// Static label for this piggyback's variant, suitable as a span or
    /// metric name: cost-attribution tooling groups encode/decode work by
    /// the control-information *shape* (the axis the paper's scalability
    /// argument varies), not by protocol name.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Piggyback::None => "none",
            Piggyback::Index { .. } => "index",
            Piggyback::Vectors { .. } => "vectors",
            Piggyback::VectorsRle { .. } => "vectors_rle",
            Piggyback::DepSet { .. } => "depset",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_is_one_integer() {
        assert_eq!(Piggyback::Index { sn: 7 }.wire_bytes(), 4);
        assert_eq!(Piggyback::Index { sn: 7 }.index(), Some(7));
    }

    #[test]
    fn none_is_free() {
        assert_eq!(Piggyback::None.wire_bytes(), 0);
        assert_eq!(Piggyback::None.index(), None);
    }

    #[test]
    fn tp_vectors_scale_with_hosts() {
        let pb = Piggyback::Vectors {
            ckpt: vec![0; 10].into(),
            loc: vec![0; 10].into(),
        };
        assert_eq!(pb.wire_bytes(), 80); // 2 × 10 × 4 bytes
        let pb_large = Piggyback::Vectors {
            ckpt: vec![0; 100].into(),
            loc: vec![0; 100].into(),
        };
        assert_eq!(pb_large.wire_bytes(), 800);
    }

    #[test]
    fn cloning_vectors_shares_storage() {
        let pb = Piggyback::Vectors {
            ckpt: vec![1, 2, 3].into(),
            loc: vec![4, 5, 6].into(),
        };
        let copy = pb.clone();
        assert_eq!(pb, copy);
        let (Piggyback::Vectors { ckpt: a, .. }, Piggyback::Vectors { ckpt: b, .. }) =
            (&pb, &copy)
        else {
            unreachable!()
        };
        assert!(Arc::ptr_eq(a, b), "clone must be a refcount bump, not a copy");
    }

    #[test]
    fn kind_names_are_distinct_static_labels() {
        let variants = [
            Piggyback::None,
            Piggyback::Index { sn: 1 },
            Piggyback::Vectors { ckpt: vec![0; 2].into(), loc: vec![0; 2].into() },
            Piggyback::VectorsRle { runs: Arc::new(rle_encode(&[0, 0], &[0, 0])) },
            Piggyback::DepSet { deps: vec![true] },
        ];
        let names: Vec<&str> = variants.iter().map(Piggyback::kind_name).collect();
        assert_eq!(names, ["none", "index", "vectors", "vectors_rle", "depset"]);
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn codec_names_parse() {
        assert_eq!(PbCodec::parse("dense"), Some(PbCodec::Dense));
        assert_eq!(PbCodec::parse("RLE"), Some(PbCodec::Rle));
        assert_eq!(PbCodec::parse("huffman"), None);
        assert_eq!(PbCodec::default(), PbCodec::Dense);
        assert_eq!(PbCodec::Rle.name(), "rle");
    }

    #[test]
    fn rle_round_trips_and_compresses_runs() {
        let ckpt = vec![0, 0, 0, 7, 7, 0, 0, 0, 0, 0];
        let loc = vec![0, 0, 0, 3, 3, 0, 0, 0, 0, 0];
        let runs = rle_encode(&ckpt, &loc);
        assert_eq!(runs.len(), 3); // [0·3][7/3·2][0·5]
        assert_eq!(rle_decode(&runs), (ckpt, loc));
    }

    #[test]
    fn rle_splits_runs_on_loc_changes_alone() {
        // Same CKPT entry stored at different stations must not merge into
        // one run — LOC[] retrieval depends on it.
        let runs = rle_encode(&[4, 4], &[1, 2]);
        assert_eq!(runs.len(), 2);
        assert_eq!(rle_decode(&runs), (vec![4, 4], vec![1, 2]));
    }

    #[test]
    fn rle_wire_bytes_scale_with_runs_not_hosts() {
        let n = 10_000;
        let mut ckpt = vec![0u64; n];
        let mut loc = vec![0u32; n];
        ckpt[17] = 5;
        loc[17] = 2;
        let pb = Piggyback::VectorsRle { runs: Arc::new(rle_encode(&ckpt, &loc)) };
        // Three runs: [0..17][17][18..]: (1 + 3·3) integers.
        assert_eq!(pb.wire_bytes(), 10 * INT_BYTES);
        let dense = Piggyback::Vectors { ckpt: ckpt.into(), loc: loc.into() };
        assert_eq!(dense.wire_bytes(), 2 * n * INT_BYTES);
    }

    #[test]
    fn rle_of_empty_vectors_is_header_only() {
        let runs = rle_encode(&[], &[]);
        assert!(runs.is_empty());
        assert_eq!(Piggyback::VectorsRle { runs: Arc::new(runs) }.wire_bytes(), INT_BYTES);
    }

    #[test]
    fn depset_is_bits() {
        assert_eq!(Piggyback::DepSet { deps: vec![false; 8] }.wire_bytes(), 1);
        assert_eq!(Piggyback::DepSet { deps: vec![false; 9] }.wire_bytes(), 2);
        assert_eq!(Piggyback::DepSet { deps: vec![] }.wire_bytes(), 0);
    }
}
