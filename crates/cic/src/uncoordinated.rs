//! Uncoordinated (independent) checkpointing baseline.
//!
//! Processes checkpoint whenever they like — here periodically, plus the
//! mobility-mandated basic checkpoints — with **no** coordination and no
//! piggybacked control information. This is the paper's first protocol
//! class, included as a baseline: it minimizes checkpointing overhead but
//! offers no guarantee that a checkpoint belongs to any consistent global
//! checkpoint, so a failure can trigger the **domino effect** and unbounded
//! rollback. The class-comparison experiment quantifies exactly that
//! trade-off.

use crate::piggyback::Piggyback;
use crate::protocol::{BasicCkpt, BasicReason, Protocol, ReceiveOutcome};

/// Per-host uncoordinated-checkpointing state (just a counter).
#[derive(Debug, Clone, Default)]
pub struct Uncoordinated {
    count: u64,
}

impl Uncoordinated {
    /// A fresh instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checkpoints taken so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

impl Protocol for Uncoordinated {
    fn name(&self) -> &'static str {
        "UNCOORD"
    }

    fn on_send(&mut self, _to: usize) -> Piggyback {
        Piggyback::None
    }

    fn on_receive(&mut self, _from: usize, _pb: &Piggyback) -> ReceiveOutcome {
        ReceiveOutcome::NONE
    }

    fn on_basic(&mut self, _reason: BasicReason) -> BasicCkpt {
        self.count += 1;
        BasicCkpt {
            index: self.count,
            replaces_predecessor: false,
        }
    }

    fn piggyback_bytes(&self) -> usize {
        0
    }

    fn current_index(&self) -> u64 {
        self.count
    }

    fn clone_box(&self) -> Box<dyn Protocol> {
        Box::new(self.clone())
    }

    fn state_sig(&self, out: &mut Vec<u64>) {
        out.push(self.count);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_forces_checkpoints() {
        let mut u = Uncoordinated::new();
        for _ in 0..10 {
            u.on_send(1);
            assert_eq!(u.on_receive(0, &Piggyback::None).forced, None);
        }
        assert_eq!(u.count(), 0);
    }

    #[test]
    fn counts_basic_checkpoints() {
        let mut u = Uncoordinated::new();
        assert_eq!(u.on_basic(BasicReason::Periodic).index, 1);
        assert_eq!(u.on_basic(BasicReason::CellSwitch).index, 2);
        assert_eq!(u.current_index(), 2);
    }

    #[test]
    fn zero_control_overhead() {
        let mut u = Uncoordinated::new();
        assert_eq!(u.piggyback_bytes(), 0);
        assert_eq!(u.on_send(0).wire_bytes(), 0);
        assert_eq!(u.name(), "UNCOORD");
    }
}
