//! Coordinated checkpointing baselines.
//!
//! The paper's Section 2 discusses the coordinated class through two
//! representatives, both implemented here as explicit state machines driven
//! by the simulator:
//!
//! * [`ChandyLamport`] — the classic distributed-snapshot protocol: an
//!   initiator checkpoints and floods *markers*; every process checkpoints
//!   on its first marker of a round and relays markers on all its outgoing
//!   channels, recording channel states in between. Simple, but in a mobile
//!   setting every marker is a control message that must *locate* a mobile
//!   host, drains batteries and contends for the wireless channel, and
//!   every process checkpoints whether it needs to or not.
//!
//! * [`PrakashSinghal`] — minimal-process coordination: only processes that
//!   acquired causal dependencies since the last round are asked to
//!   checkpoint. Dependencies are tracked with a piggybacked bit-vector
//!   (which is precisely the O(n) data structure the paper holds against
//!   it).
//!
//! Unlike the communication-induced protocols, these need *control
//! messages*; the output of each handler lists the messages to transmit so
//! the simulator can charge them to the network and energy models.

use std::collections::{BTreeMap, BTreeSet};

/// A coordination control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlMsg {
    /// Chandy–Lamport channel marker for a snapshot round.
    Marker {
        /// Snapshot round number.
        round: u64,
    },
    /// Prakash–Singhal checkpoint request for a round.
    CkptRequest {
        /// Coordination round number.
        round: u64,
    },
    /// Koo–Toueg checkpoint request (tentative phase).
    KtRequest {
        /// Coordination round number.
        round: u64,
    },
    /// Koo–Toueg acknowledgement, carrying the subtree's participant set.
    KtAck {
        /// Coordination round number.
        round: u64,
        /// Every process that took a tentative checkpoint in the sender's
        /// request subtree (including the sender).
        participants: Vec<usize>,
    },
    /// Koo–Toueg commit: tentative checkpoints become permanent, blocking
    /// ends.
    KtCommit {
        /// Coordination round number.
        round: u64,
    },
}

/// What a coordination event asks the host/simulator to do.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoordAction {
    /// Take a (coordinated) checkpoint now, with this protocol index.
    pub checkpoint: Option<u64>,
    /// Control messages to send: `(destination, message)`.
    pub send: Vec<(usize, ControlMsg)>,
}

// ---------------------------------------------------------------------------
// Chandy–Lamport
// ---------------------------------------------------------------------------

/// Per-process Chandy–Lamport snapshot state.
///
/// Channels are the ordered process pairs of a fully connected network. The
/// mobile substrate delivers same-pair messages in FIFO order (constant hop
/// latencies), satisfying the protocol's channel assumption.
#[derive(Debug, Clone)]
pub struct ChandyLamport {
    me: usize,
    n: usize,
    /// Rounds for which this process has already checkpointed.
    taken: BTreeSet<u64>,
    /// Per round, the channels (peer ids) whose marker has arrived.
    markers_seen: BTreeMap<u64, BTreeSet<usize>>,
    /// Per round, recorded in-channel messages `(from, payload id)` received
    /// after our checkpoint but before that channel's marker.
    channel_state: BTreeMap<u64, Vec<(usize, u64)>>,
    /// Checkpoints taken so far (protocol index).
    count: u64,
}

impl ChandyLamport {
    /// A fresh instance for process `me` of `n`.
    pub fn new(me: usize, n: usize) -> Self {
        assert!(me < n);
        ChandyLamport {
            me,
            n,
            taken: BTreeSet::new(),
            markers_seen: BTreeMap::new(),
            channel_state: BTreeMap::new(),
            count: 0,
        }
    }

    fn others(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&j| j != self.me)
    }

    fn snapshot_now(&mut self, round: u64) -> CoordAction {
        self.taken.insert(round);
        self.count += 1;
        self.channel_state.entry(round).or_default();
        CoordAction {
            checkpoint: Some(self.count),
            send: self
                .others()
                .map(|j| (j, ControlMsg::Marker { round }))
                .collect(),
        }
    }

    /// This process initiates snapshot `round`: checkpoint and send markers
    /// on every outgoing channel.
    pub fn initiate(&mut self, round: u64) -> CoordAction {
        assert!(
            !self.taken.contains(&round),
            "round {round} already initiated or joined"
        );
        self.snapshot_now(round)
    }

    /// A marker for `round` arrived on the channel from `from`.
    pub fn on_marker(&mut self, from: usize, round: u64) -> CoordAction {
        let mut action = if self.taken.contains(&round) {
            CoordAction::default()
        } else {
            // First marker of the round: checkpoint and relay.
            self.snapshot_now(round)
        };
        let seen = self.markers_seen.entry(round).or_default();
        let fresh = seen.insert(from);
        if !fresh {
            // Duplicate marker (at-least-once transport): idempotent.
            action.send.clear();
            action.checkpoint = None;
        }
        action
    }

    /// An application message arrived (for channel-state recording): if any
    /// round is open on the `from` channel (our checkpoint taken, its marker
    /// not yet received), the message belongs to that channel's state.
    pub fn on_app_message(&mut self, from: usize, payload_id: u64) {
        let open_rounds: Vec<u64> = self
            .taken
            .iter()
            .copied()
            .filter(|r| {
                !self
                    .markers_seen
                    .get(r)
                    .is_some_and(|s| s.contains(&from))
            })
            .collect();
        for r in open_rounds {
            self.channel_state
                .entry(r)
                .or_default()
                .push((from, payload_id));
        }
    }

    /// True when all n−1 markers for `round` have arrived (local snapshot
    /// complete, channel states closed).
    pub fn round_complete(&self, round: u64) -> bool {
        self.taken.contains(&round)
            && self
                .markers_seen
                .get(&round)
                .is_some_and(|s| s.len() == self.n - 1)
    }

    /// Messages recorded as the state of incoming channels for `round`.
    pub fn channel_state(&self, round: u64) -> &[(usize, u64)] {
        self.channel_state
            .get(&round)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Checkpoints taken so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

// ---------------------------------------------------------------------------
// Prakash–Singhal-style minimal coordination
// ---------------------------------------------------------------------------

/// Per-process minimal-coordination state.
#[derive(Debug, Clone)]
pub struct PrakashSinghal {
    me: usize,
    /// Transitive dependency set since the last coordinated checkpoint:
    /// `deps[j]` means our current interval causally depends on process `j`.
    deps: Vec<bool>,
    /// Rounds already checkpointed.
    taken: BTreeSet<u64>,
    count: u64,
}

impl PrakashSinghal {
    /// A fresh instance for process `me` of `n`.
    pub fn new(me: usize, n: usize) -> Self {
        assert!(me < n);
        PrakashSinghal {
            me,
            deps: vec![false; n],
            taken: BTreeSet::new(),
            count: 0,
        }
    }

    /// The dependency bit-vector to piggyback on an outgoing application
    /// message (the O(n) control information the paper criticizes).
    pub fn piggyback(&self) -> Vec<bool> {
        self.deps.clone()
    }

    /// An application message from `from` carrying the sender's dependency
    /// set arrived: merge it and add the direct dependency.
    pub fn on_app_message(&mut self, from: usize, sender_deps: &[bool]) {
        assert_eq!(sender_deps.len(), self.deps.len(), "dep vector width");
        for (mine, theirs) in self.deps.iter_mut().zip(sender_deps) {
            *mine |= *theirs;
        }
        self.deps[from] = true;
    }

    /// Current dependency set (indices of processes we depend on).
    pub fn dependency_set(&self) -> Vec<usize> {
        self.deps
            .iter()
            .enumerate()
            .filter(|&(j, &d)| d && j != self.me)
            .map(|(j, _)| j)
            .collect()
    }

    fn checkpoint_and_fan_out(&mut self, round: u64) -> CoordAction {
        self.taken.insert(round);
        self.count += 1;
        let targets = self.dependency_set();
        // A checkpoint closes the interval: dependencies reset.
        self.deps.iter_mut().for_each(|d| *d = false);
        CoordAction {
            checkpoint: Some(self.count),
            send: targets
                .into_iter()
                .map(|j| (j, ControlMsg::CkptRequest { round }))
                .collect(),
        }
    }

    /// Initiate coordination round `round`: checkpoint and ask exactly the
    /// processes we causally depend on to do the same (transitively).
    pub fn initiate(&mut self, round: u64) -> CoordAction {
        assert!(!self.taken.contains(&round), "round {round} already run");
        self.checkpoint_and_fan_out(round)
    }

    /// A checkpoint request for `round` arrived.
    pub fn on_request(&mut self, round: u64) -> CoordAction {
        if self.taken.contains(&round) {
            CoordAction::default() // idempotent under duplicates/cycles
        } else {
            self.checkpoint_and_fan_out(round)
        }
    }

    /// Checkpoints taken so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

// ---------------------------------------------------------------------------
// Koo–Toueg blocking minimal coordination
// ---------------------------------------------------------------------------

/// Per-round Koo–Toueg session state.
#[derive(Debug, Clone)]
struct KtRound {
    /// Who asked us to join (None at the initiator).
    parent: Option<usize>,
    /// Children we are still waiting on.
    waiting: BTreeSet<usize>,
    /// Participants gathered from acked subtrees (plus ourselves).
    participants: BTreeSet<usize>,
    /// Tentative checkpoint committed?
    committed: bool,
    /// Are we the initiator?
    initiator: bool,
}

/// Koo–Toueg two-phase **blocking** minimal-process coordination.
///
/// The initiator takes a *tentative* checkpoint, blocks its application
/// sends, and asks the processes it causally depends on to do the same;
/// requests propagate transitively (a tree), acknowledgements flow back up
/// carrying the participant sets, and the initiator finally *commits*,
/// unblocking everyone. Blocking is the price of its simplicity — the
/// simulator measures the sends suppressed while blocked, the cost the
/// paper's non-blocking alternatives avoid.
#[derive(Debug, Clone)]
pub struct KooToueg {
    me: usize,
    deps: Vec<bool>,
    rounds: BTreeMap<u64, KtRound>,
    count: u64,
}

impl KooToueg {
    /// A fresh instance for process `me` of `n`.
    pub fn new(me: usize, n: usize) -> Self {
        assert!(me < n);
        KooToueg {
            me,
            deps: vec![false; n],
            rounds: BTreeMap::new(),
            count: 0,
        }
    }

    /// Dependency bit-vector to piggyback on outgoing application messages.
    pub fn piggyback(&self) -> Vec<bool> {
        self.deps.clone()
    }

    /// Merge a received message's dependency information.
    pub fn on_app_message(&mut self, from: usize, sender_deps: &[bool]) {
        assert_eq!(sender_deps.len(), self.deps.len(), "dep vector width");
        for (mine, theirs) in self.deps.iter_mut().zip(sender_deps) {
            *mine |= *theirs;
        }
        self.deps[from] = true;
    }

    /// True while some session holds a tentative, uncommitted checkpoint:
    /// the process must not send application messages.
    pub fn is_blocked(&self) -> bool {
        self.rounds.values().any(|r| !r.committed)
    }

    /// Checkpoints taken (tentative ones count; we model no aborts).
    pub fn count(&self) -> u64 {
        self.count
    }

    fn dependency_targets(&self, exclude: Option<usize>) -> Vec<usize> {
        self.deps
            .iter()
            .enumerate()
            .filter(|&(j, &d)| d && j != self.me && Some(j) != exclude)
            .map(|(j, _)| j)
            .collect()
    }

    /// Start a session: tentative checkpoint, block, fan out requests.
    pub fn initiate(&mut self, round: u64) -> CoordAction {
        assert!(!self.rounds.contains_key(&round), "round {round} already run");
        self.count += 1;
        let targets = self.dependency_targets(None);
        self.deps.iter_mut().for_each(|d| *d = false);
        let mut participants = BTreeSet::new();
        participants.insert(self.me);
        let committed = targets.is_empty();
        self.rounds.insert(
            round,
            KtRound {
                parent: None,
                waiting: targets.iter().copied().collect(),
                participants,
                committed, // nobody to wait for ⇒ trivially committed
                initiator: true,
            },
        );
        CoordAction {
            checkpoint: Some(self.count),
            send: targets
                .into_iter()
                .map(|j| (j, ControlMsg::KtRequest { round }))
                .collect(),
        }
    }

    /// A request arrived from `from`.
    pub fn on_request(&mut self, from: usize, round: u64) -> CoordAction {
        if self.rounds.contains_key(&round) {
            // Already participating (cycle in the dependency graph): ack
            // immediately without a second tentative checkpoint.
            return CoordAction {
                checkpoint: None,
                send: vec![(
                    from,
                    ControlMsg::KtAck {
                        round,
                        participants: vec![],
                    },
                )],
            };
        }
        self.count += 1;
        let targets = self.dependency_targets(Some(from));
        self.deps.iter_mut().for_each(|d| *d = false);
        let mut participants = BTreeSet::new();
        participants.insert(self.me);
        self.rounds.insert(
            round,
            KtRound {
                parent: Some(from),
                waiting: targets.iter().copied().collect(),
                participants,
                committed: false,
                initiator: false,
            },
        );
        if targets.is_empty() {
            // Leaf: ack the parent straight away.
            CoordAction {
                checkpoint: Some(self.count),
                send: vec![(
                    from,
                    ControlMsg::KtAck {
                        round,
                        participants: vec![self.me],
                    },
                )],
            }
        } else {
            CoordAction {
                checkpoint: Some(self.count),
                send: targets
                    .into_iter()
                    .map(|j| (j, ControlMsg::KtRequest { round }))
                    .collect(),
            }
        }
    }

    /// A child's acknowledgement arrived.
    pub fn on_ack(&mut self, from: usize, round: u64, participants: &[usize]) -> CoordAction {
        let Some(state) = self.rounds.get_mut(&round) else {
            return CoordAction::default(); // stale ack after commit
        };
        state.waiting.remove(&from);
        state.participants.extend(participants.iter().copied());
        if !state.waiting.is_empty() {
            return CoordAction::default();
        }
        if state.initiator {
            // Phase 2: commit to every participant (except ourselves).
            state.committed = true;
            let me = self.me;
            let targets: Vec<usize> = state
                .participants
                .iter()
                .copied()
                .filter(|&j| j != me)
                .collect();
            CoordAction {
                checkpoint: None,
                send: targets
                    .into_iter()
                    .map(|j| (j, ControlMsg::KtCommit { round }))
                    .collect(),
            }
        } else {
            // Subtree complete: ack our parent with the gathered set.
            let parent = state.parent.expect("non-initiator has a parent");
            let participants: Vec<usize> = state.participants.iter().copied().collect();
            CoordAction {
                checkpoint: None,
                send: vec![(
                    parent,
                    ControlMsg::KtAck {
                        round,
                        participants,
                    },
                )],
            }
        }
    }

    /// The initiator's commit arrived: unblock.
    pub fn on_commit(&mut self, round: u64) -> CoordAction {
        if let Some(state) = self.rounds.get_mut(&round) {
            state.committed = true;
        }
        CoordAction::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cl_initiator_checkpoints_and_floods() {
        let mut p = ChandyLamport::new(0, 4);
        let a = p.initiate(1);
        assert_eq!(a.checkpoint, Some(1));
        assert_eq!(a.send.len(), 3);
        assert!(a
            .send
            .iter()
            .all(|(_, m)| *m == ControlMsg::Marker { round: 1 }));
    }

    #[test]
    fn cl_first_marker_checkpoints_and_relays() {
        let mut p = ChandyLamport::new(1, 3);
        let a = p.on_marker(0, 1);
        assert_eq!(a.checkpoint, Some(1));
        assert_eq!(a.send.len(), 2); // relays to 0 and 2
        let b = p.on_marker(2, 1);
        assert_eq!(b.checkpoint, None);
        assert!(b.send.is_empty());
        assert!(p.round_complete(1));
    }

    #[test]
    fn cl_duplicate_marker_is_idempotent() {
        let mut p = ChandyLamport::new(1, 3);
        p.on_marker(0, 1);
        let dup = p.on_marker(0, 1);
        assert_eq!(dup, CoordAction::default());
        assert_eq!(p.count(), 1);
        assert!(!p.round_complete(1));
    }

    #[test]
    fn cl_channel_state_captures_in_flight() {
        let mut p = ChandyLamport::new(1, 3);
        p.on_app_message(0, 100); // before any round: not recorded
        p.on_marker(0, 1); // round 1 open; channel 0 closed immediately
        p.on_app_message(0, 101); // channel 0 already closed: not recorded
        p.on_app_message(2, 102); // channel 2 still open: recorded
        let mk = p.on_marker(2, 1);
        assert!(mk.checkpoint.is_none());
        p.on_app_message(2, 103); // after marker: not recorded
        assert_eq!(p.channel_state(1), &[(2, 102)]);
        assert!(p.round_complete(1));
    }

    #[test]
    fn cl_rounds_are_independent() {
        let mut p = ChandyLamport::new(0, 2);
        p.initiate(1);
        p.initiate(2);
        assert_eq!(p.count(), 2);
        assert!(!p.round_complete(1));
        p.on_marker(1, 1);
        assert!(p.round_complete(1));
        assert!(!p.round_complete(2));
    }

    #[test]
    fn ps_initiator_without_deps_checkpoints_alone() {
        let mut p = PrakashSinghal::new(0, 4);
        let a = p.initiate(1);
        assert_eq!(a.checkpoint, Some(1));
        assert!(a.send.is_empty(), "no dependencies ⇒ nobody else asked");
    }

    #[test]
    fn ps_requests_exactly_the_dependency_set() {
        let mut p = PrakashSinghal::new(0, 4);
        p.on_app_message(2, &[false, false, false, false]);
        p.on_app_message(3, &[false, true, false, false]); // 3 depends on 1
        assert_eq!(p.dependency_set(), vec![1, 2, 3]);
        let a = p.initiate(1);
        let mut targets: Vec<usize> = a.send.iter().map(|(j, _)| *j).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![1, 2, 3]);
        // Dependencies cleared by the checkpoint.
        assert!(p.dependency_set().is_empty());
    }

    #[test]
    fn ps_request_is_idempotent_per_round() {
        let mut p = PrakashSinghal::new(1, 3);
        let a = p.on_request(7);
        assert_eq!(a.checkpoint, Some(1));
        let b = p.on_request(7);
        assert_eq!(b, CoordAction::default());
        assert_eq!(p.count(), 1);
    }

    #[test]
    fn ps_transitive_fan_out() {
        // p1 depends on p2; when p1 gets a request it forwards to p2.
        let mut p1 = PrakashSinghal::new(1, 3);
        p1.on_app_message(2, &[false, false, false]);
        let a = p1.on_request(1);
        assert_eq!(a.send, vec![(2, ControlMsg::CkptRequest { round: 1 })]);
    }

    #[test]
    fn ps_own_bit_is_ignored_in_dependency_set() {
        let mut p = PrakashSinghal::new(0, 2);
        // A message whose dep vector claims dependency on ourselves.
        p.on_app_message(1, &[true, false]);
        assert_eq!(p.dependency_set(), vec![1]);
    }

    // -- Koo–Toueg ----------------------------------------------------------

    #[test]
    fn kt_lonely_initiator_commits_immediately() {
        let mut p = KooToueg::new(0, 3);
        let a = p.initiate(1);
        assert_eq!(a.checkpoint, Some(1));
        assert!(a.send.is_empty());
        assert!(!p.is_blocked(), "no participants ⇒ nothing to wait for");
    }

    #[test]
    fn kt_initiator_blocks_until_all_acks() {
        let mut p = KooToueg::new(0, 3);
        p.on_app_message(1, &[false, false, false]);
        p.on_app_message(2, &[false, false, false]);
        let a = p.initiate(1);
        assert_eq!(a.send.len(), 2);
        assert!(p.is_blocked());
        p.on_ack(1, 1, &[1]);
        assert!(p.is_blocked(), "still waiting for 2");
        let fin = p.on_ack(2, 1, &[2]);
        assert!(!p.is_blocked());
        // Commit goes to both participants.
        let mut targets: Vec<usize> = fin.send.iter().map(|(j, _)| *j).collect();
        targets.sort_unstable();
        assert_eq!(targets, vec![1, 2]);
        assert!(fin
            .send
            .iter()
            .all(|(_, m)| *m == ControlMsg::KtCommit { round: 1 }));
    }

    #[test]
    fn kt_leaf_acks_parent_and_blocks_until_commit() {
        let mut p = KooToueg::new(1, 3);
        let a = p.on_request(0, 7);
        assert_eq!(a.checkpoint, Some(1));
        assert_eq!(
            a.send,
            vec![(
                0,
                ControlMsg::KtAck {
                    round: 7,
                    participants: vec![1]
                }
            )]
        );
        assert!(p.is_blocked());
        p.on_commit(7);
        assert!(!p.is_blocked());
    }

    #[test]
    fn kt_transitive_tree_gathers_participants() {
        // 0 depends on 1; 1 depends on 2. Requests flow 0→1→2, acks 2→1→0.
        let mut p1 = KooToueg::new(1, 3);
        p1.on_app_message(2, &[false, false, false]);
        let a = p1.on_request(0, 1);
        assert_eq!(a.checkpoint, Some(1));
        assert_eq!(a.send, vec![(2, ControlMsg::KtRequest { round: 1 })]);
        // p2 (leaf) acks p1; p1 then acks p0 with {1, 2}.
        let up = p1.on_ack(2, 1, &[2]);
        match &up.send[..] {
            [(0, ControlMsg::KtAck { round: 1, participants })] => {
                let mut ps = participants.clone();
                ps.sort_unstable();
                assert_eq!(ps, vec![1, 2]);
            }
            other => panic!("unexpected ack {other:?}"),
        }
    }

    #[test]
    fn kt_cycle_acks_without_second_checkpoint() {
        let mut p = KooToueg::new(1, 3);
        p.on_request(0, 1);
        assert_eq!(p.count(), 1);
        let again = p.on_request(2, 1);
        assert_eq!(again.checkpoint, None);
        assert_eq!(p.count(), 1);
        assert_eq!(
            again.send,
            vec![(
                2,
                ControlMsg::KtAck {
                    round: 1,
                    participants: vec![]
                }
            )]
        );
    }

    #[test]
    fn kt_stale_ack_is_ignored() {
        let mut p = KooToueg::new(0, 2);
        assert_eq!(p.on_ack(1, 99, &[1]), CoordAction::default());
    }

    #[test]
    fn kt_dependencies_reset_after_checkpoint() {
        let mut p = KooToueg::new(0, 3);
        p.on_app_message(1, &[false, false, false]);
        p.initiate(1);
        // New session sees a clean slate.
        p.on_ack(1, 1, &[1]);
        let a2 = p.initiate(2);
        assert!(a2.send.is_empty(), "dependencies were reset");
    }
}
