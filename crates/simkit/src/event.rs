//! Pending-event set.
//!
//! [`Scheduler`] is the heart of the discrete-event engine: a priority queue
//! of `(time, payload)` pairs with three guarantees the rest of the system
//! relies on:
//!
//! 1. **Monotonicity** — events are popped in non-decreasing time order and
//!    the simulation clock never moves backwards.
//! 2. **Determinism** — simultaneous events are popped in the order they were
//!    scheduled (FIFO tie-breaking by an insertion sequence number), so a run
//!    is a pure function of its inputs and RNG seed.
//! 3. **No past scheduling** — scheduling an event before the current clock
//!    panics; time travel is always a model bug.
//!
//! Events may be cancelled through the [`EventHandle`] returned at schedule
//! time; cancelled entries are dropped lazily when they reach the head of the
//! heap, which keeps cancellation O(1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::calendar::CalendarQueue;
use crate::time::SimTime;

/// Which data structure backs the scheduler's pending-event set.
///
/// Both backends honour the same contract (non-decreasing pops, FIFO
/// tie-breaking by insertion order, lazy cancellation), so a run is
/// byte-identical under either; property tests enforce this. The choice
/// only affects wall-clock speed: the heap has the better constants at the
/// simulator's typical pending sizes (tens of events), the calendar queue
/// wins asymptotically on very large event sets (see the `engine` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// Binary heap — O(log n) per op, excellent constants (default).
    #[default]
    Heap,
    /// Calendar queue — amortized O(1) (R. Brown, CACM 1988).
    Calendar,
}

impl QueueBackend {
    /// Stable lowercase name, as used by config files and `--queue`.
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::Heap => "heap",
            QueueBackend::Calendar => "calendar",
        }
    }

    /// Parses a backend name (`"heap"` or `"calendar"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(QueueBackend::Heap),
            "calendar" => Some(QueueBackend::Calendar),
            _ => None,
        }
    }
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Opaque handle identifying one scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// A `(time, payload)` pair as returned by [`Scheduler::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired<E> {
    /// When the event fired; equal to the scheduler clock at pop time.
    pub time: SimTime,
    /// The scheduled payload.
    pub event: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Calendar payload: the scheduler's sequence number rides along so lazy
/// cancellation can identify entries. The calendar's own insertion counter
/// advances in lockstep, so FIFO tie-breaking matches the heap exactly.
struct Tagged<E> {
    seq: u64,
    event: E,
}

enum Backing<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(CalendarQueue<Tagged<E>>),
}

/// Deterministic pending-event set with lazy cancellation.
pub struct Scheduler<E> {
    backing: Backing<E>,
    backend: QueueBackend,
    cancelled: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
    scheduled: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`],
    /// backed by the default [`QueueBackend`].
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Creates an empty scheduler backed by the chosen pending-event
    /// structure. Behaviour is identical across backends; only the
    /// constant factors differ.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Scheduler {
            backing: match backend {
                QueueBackend::Heap => Backing::Heap(BinaryHeap::new()),
                QueueBackend::Calendar => Backing::Calendar(CalendarQueue::new()),
            },
            backend,
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
            scheduled: 0,
        }
    }

    /// Which backend this scheduler was built with.
    pub fn backend(&self) -> QueueBackend {
        self.backend
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        match &mut self.backing {
            Backing::Heap(heap) => heap.push(Entry {
                time: at,
                seq,
                event,
            }),
            Backing::Calendar(cal) => cal.schedule_at(at, Tagged { seq, event }),
        }
        EventHandle(seq)
    }

    /// Schedules `event` after a non-negative `delay` from the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: f64, event: E) -> EventHandle {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and non-negative, got {delay}"
        );
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    /// Cancelling an already-fired handle returns `false` and is harmless.
    ///
    /// Costs a scan of the pending set (cancellation is rare — nothing in
    /// the simulator's hot path cancels); in exchange, `schedule`/`pop`
    /// carry no per-event liveness bookkeeping, and a stale handle can
    /// never poison the cancelled set (which would corrupt [`len`]).
    ///
    /// [`len`]: Scheduler::len
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq || self.cancelled.contains(&handle.0) {
            return false;
        }
        let pending = match &self.backing {
            Backing::Heap(heap) => heap.iter().any(|e| e.seq == handle.0),
            Backing::Calendar(cal) => cal.iter().any(|(_, t)| t.seq == handle.0),
        };
        pending && self.cancelled.insert(handle.0)
    }

    /// Pops the earliest pending event, advancing the clock to its time.
    ///
    /// Returns `None` when the event set is exhausted. Cancelled events are
    /// skipped transparently.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        let fired = match &mut self.backing {
            Backing::Heap(heap) => loop {
                let Some(entry) = heap.pop() else { break None };
                if self.cancelled.remove(&entry.seq) {
                    continue;
                }
                break Some(Fired {
                    time: entry.time,
                    event: entry.event,
                });
            },
            Backing::Calendar(cal) => loop {
                let Some((time, tagged)) = cal.peek() else { break None };
                let seq = tagged.seq;
                if self.cancelled.remove(&seq) {
                    // Drop the dead head without raising the calendar's
                    // no-time-travel floor (which tracks live pops only,
                    // mirroring the heap's `now` semantics).
                    cal.discard_next();
                    continue;
                }
                let (_, tagged) = cal.pop().expect("peeked entry exists");
                break Some(Fired {
                    time,
                    event: tagged.event,
                });
            },
        };
        let fired = fired?;
        debug_assert!(fired.time >= self.now, "backing produced out-of-order event");
        self.now = fired.time;
        self.popped += 1;
        Some(fired)
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Purge dead entries at the head so the answer reflects a live event.
        match &mut self.backing {
            Backing::Heap(heap) => {
                while let Some(entry) = heap.peek() {
                    if self.cancelled.contains(&entry.seq) {
                        let seq = heap.pop().expect("peeked entry exists").seq;
                        self.cancelled.remove(&seq);
                    } else {
                        return Some(entry.time);
                    }
                }
                None
            }
            Backing::Calendar(cal) => {
                while let Some((time, tagged)) = cal.peek() {
                    let seq = tagged.seq;
                    if self.cancelled.remove(&seq) {
                        cal.discard_next();
                    } else {
                        return Some(time);
                    }
                }
                None
            }
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        let raw = match &self.backing {
            Backing::Heap(heap) => heap.len(),
            Backing::Calendar(cal) => cal.len(),
        };
        raw - self.cancelled.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events popped so far (a throughput counter for benchmarks).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Total events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::new(3.0), "c");
        s.schedule_at(SimTime::new(1.0), "a");
        s.schedule_at(SimTime::new(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::new(3.0));
    }

    #[test]
    fn fifo_within_ties() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule_at(SimTime::new(5.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.event).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_in(1.5, ());
        s.schedule_in(0.5, ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::new(0.5));
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::new(1.5));
        assert!(s.pop().is_none());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule_in(1.0, "first");
        s.pop().unwrap();
        s.schedule_in(1.0, "second");
        let fired = s.pop().unwrap();
        assert_eq!(fired.time, SimTime::new(2.0));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::new(2.0), ());
        s.pop().unwrap();
        s.schedule_at(SimTime::new(1.0), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut s = Scheduler::new();
        let h1 = s.schedule_at(SimTime::new(1.0), "a");
        s.schedule_at(SimTime::new(2.0), "b");
        assert_eq!(s.len(), 2);
        assert!(s.cancel(h1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop().unwrap().event, "b");
        assert!(s.pop().is_none());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut s = Scheduler::new();
        let h = s.schedule_at(SimTime::new(1.0), ());
        assert!(s.cancel(h));
        assert!(!s.cancel(h));
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(!s.cancel(EventHandle(42)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_keeps_len_exact() {
        // A fired handle must not poison the cancelled set: `len()` would
        // drift (and eventually underflow) on either backend.
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let mut s = Scheduler::with_backend(backend);
            let h = s.schedule_at(SimTime::new(1.0), "fires");
            s.schedule_at(SimTime::new(2.0), "stays");
            assert_eq!(s.pop().unwrap().event, "fires");
            assert!(!s.cancel(h), "{backend}: handle already fired");
            assert_eq!(s.len(), 1, "{backend}");
            assert_eq!(s.pop().unwrap().event, "stays");
            assert!(s.pop().is_none());
        }
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let h = s.schedule_at(SimTime::new(1.0), "dead");
        s.schedule_at(SimTime::new(2.0), "live");
        s.cancel(h);
        assert_eq!(s.peek_time(), Some(SimTime::new(2.0)));
        assert_eq!(s.pop().unwrap().event, "live");
    }

    #[test]
    fn counters_track_activity() {
        let mut s = Scheduler::new();
        s.schedule_in(1.0, ());
        s.schedule_in(2.0, ());
        s.pop();
        assert_eq!(s.scheduled(), 2);
        assert_eq!(s.popped(), 1);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_scheduler_behaves() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.peek_time(), None);
        assert!(s.pop().is_none());
    }

    #[test]
    fn backend_roundtrip_and_names() {
        assert_eq!(QueueBackend::default(), QueueBackend::Heap);
        for b in [QueueBackend::Heap, QueueBackend::Calendar] {
            assert_eq!(QueueBackend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(QueueBackend::parse("splay"), None);
        let s: Scheduler<()> = Scheduler::with_backend(QueueBackend::Calendar);
        assert_eq!(s.backend(), QueueBackend::Calendar);
    }

    #[test]
    fn calendar_backend_matches_heap_semantics() {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let mut s = Scheduler::with_backend(backend);
            // Ties, cancellation mid-stream, peek purging, reschedule after pop.
            s.schedule_at(SimTime::new(2.0), "b1");
            s.schedule_at(SimTime::new(2.0), "b2");
            let dead = s.schedule_at(SimTime::new(1.0), "dead");
            s.schedule_at(SimTime::new(3.0), "c");
            assert!(s.cancel(dead));
            assert_eq!(s.peek_time(), Some(SimTime::new(2.0)), "{backend}");
            assert_eq!(s.len(), 3);
            assert_eq!(s.pop().unwrap().event, "b1", "{backend}");
            assert_eq!(s.now(), SimTime::new(2.0));
            // Scheduling between now and the next pending event must work
            // even after a peek advanced the backend's scan position.
            s.schedule_at(SimTime::new(2.5), "mid");
            let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.event).collect();
            assert_eq!(order, vec!["b2", "mid", "c"], "{backend}");
        }
    }
}
