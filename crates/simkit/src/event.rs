//! Pending-event set.
//!
//! [`Scheduler`] is the heart of the discrete-event engine: a priority queue
//! of `(time, payload)` pairs with three guarantees the rest of the system
//! relies on:
//!
//! 1. **Monotonicity** — events are popped in non-decreasing time order and
//!    the simulation clock never moves backwards.
//! 2. **Determinism** — simultaneous events are popped in the order they were
//!    scheduled (FIFO tie-breaking by an insertion sequence number), so a run
//!    is a pure function of its inputs and RNG seed.
//! 3. **No past scheduling** — scheduling an event before the current clock
//!    panics; time travel is always a model bug.
//!
//! Events may be cancelled through the [`EventHandle`] returned at schedule
//! time; cancelled entries are dropped lazily when they reach the head of the
//! heap, which keeps cancellation O(1).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::calendar::CalendarQueue;
use crate::time::SimTime;

/// Which data structure backs the scheduler's pending-event set.
///
/// Both backends honour the same contract (non-decreasing pops, FIFO
/// tie-breaking by insertion order, lazy cancellation), so a run is
/// byte-identical under either; property tests enforce this. The choice
/// only affects wall-clock speed: the heap has the better constants at the
/// simulator's typical pending sizes (tens of events), the calendar queue
/// wins asymptotically on very large event sets (see the `engine` bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// Binary heap — O(log n) per op, excellent constants (default).
    #[default]
    Heap,
    /// Calendar queue — amortized O(1) (R. Brown, CACM 1988).
    Calendar,
}

impl QueueBackend {
    /// Stable lowercase name, as used by config files and `--queue`.
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::Heap => "heap",
            QueueBackend::Calendar => "calendar",
        }
    }

    /// Parses a backend name (`"heap"` or `"calendar"`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "heap" => Some(QueueBackend::Heap),
            "calendar" => Some(QueueBackend::Calendar),
            _ => None,
        }
    }
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Opaque handle identifying one scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// A `(time, payload)` pair as returned by [`Scheduler::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired<E> {
    /// When the event fired; equal to the scheduler clock at pop time.
    pub time: SimTime,
    /// The scheduled payload.
    pub event: E,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// BinaryHeap is a max-heap; invert the ordering to pop the earliest
// (time, seq) first.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Calendar payload: the scheduler's sequence number rides along so lazy
/// cancellation can identify entries. The calendar's own insertion counter
/// advances in lockstep, so FIFO tie-breaking matches the heap exactly.
#[derive(Debug, Clone)]
struct Tagged<E> {
    seq: u64,
    event: E,
}

#[derive(Clone)]
enum Backing<E> {
    Heap(BinaryHeap<Entry<E>>),
    Calendar(CalendarQueue<Tagged<E>>),
}

/// Deterministic pending-event set with lazy cancellation.
#[derive(Clone)]
pub struct Scheduler<E> {
    backing: Backing<E>,
    backend: QueueBackend,
    cancelled: HashSet<u64>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
    scheduled: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates an empty scheduler with the clock at [`SimTime::ZERO`],
    /// backed by the default [`QueueBackend`].
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::default())
    }

    /// Creates an empty scheduler backed by the chosen pending-event
    /// structure. Behaviour is identical across backends; only the
    /// constant factors differ.
    pub fn with_backend(backend: QueueBackend) -> Self {
        Scheduler {
            backing: match backend {
                QueueBackend::Heap => Backing::Heap(BinaryHeap::new()),
                QueueBackend::Calendar => Backing::Calendar(CalendarQueue::new()),
            },
            backend,
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
            scheduled: 0,
        }
    }

    /// Which backend this scheduler was built with.
    pub fn backend(&self) -> QueueBackend {
        self.backend
    }

    /// Current simulation time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at}, now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        match &mut self.backing {
            Backing::Heap(heap) => heap.push(Entry {
                time: at,
                seq,
                event,
            }),
            Backing::Calendar(cal) => cal.schedule_at(at, Tagged { seq, event }),
        }
        EventHandle(seq)
    }

    /// Schedules `event` after a non-negative `delay` from the current clock.
    #[inline]
    pub fn schedule_in(&mut self, delay: f64, event: E) -> EventHandle {
        assert!(
            delay.is_finite() && delay >= 0.0,
            "delay must be finite and non-negative, got {delay}"
        );
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired (or been cancelled).
    /// Cancelling an already-fired handle returns `false` and is harmless.
    ///
    /// Costs a scan of the pending set (cancellation is rare — nothing in
    /// the simulator's hot path cancels); in exchange, `schedule`/`pop`
    /// carry no per-event liveness bookkeeping, and a stale handle can
    /// never poison the cancelled set (which would corrupt [`len`]).
    ///
    /// [`len`]: Scheduler::len
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq || self.cancelled.contains(&handle.0) {
            return false;
        }
        let pending = match &self.backing {
            Backing::Heap(heap) => heap.iter().any(|e| e.seq == handle.0),
            Backing::Calendar(cal) => cal.iter().any(|(_, t)| t.seq == handle.0),
        };
        pending && self.cancelled.insert(handle.0)
    }

    /// Pops the earliest pending event, advancing the clock to its time.
    ///
    /// Returns `None` when the event set is exhausted. Cancelled events are
    /// skipped transparently.
    pub fn pop(&mut self) -> Option<Fired<E>> {
        let fired = match &mut self.backing {
            Backing::Heap(heap) => loop {
                let Some(entry) = heap.pop() else { break None };
                if self.cancelled.remove(&entry.seq) {
                    continue;
                }
                break Some(Fired {
                    time: entry.time,
                    event: entry.event,
                });
            },
            Backing::Calendar(cal) => loop {
                let Some((time, tagged)) = cal.peek() else { break None };
                let seq = tagged.seq;
                if self.cancelled.remove(&seq) {
                    // Drop the dead head without raising the calendar's
                    // no-time-travel floor (which tracks live pops only,
                    // mirroring the heap's `now` semantics).
                    cal.discard_next();
                    continue;
                }
                let (_, tagged) = cal.pop().expect("peeked entry exists");
                break Some(Fired {
                    time,
                    event: tagged.event,
                });
            },
        };
        let fired = fired?;
        debug_assert!(fired.time >= self.now, "backing produced out-of-order event");
        self.now = fired.time;
        self.popped += 1;
        Some(fired)
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        // Purge dead entries at the head so the answer reflects a live event.
        match &mut self.backing {
            Backing::Heap(heap) => {
                while let Some(entry) = heap.peek() {
                    if self.cancelled.contains(&entry.seq) {
                        let seq = heap.pop().expect("peeked entry exists").seq;
                        self.cancelled.remove(&seq);
                    } else {
                        return Some(entry.time);
                    }
                }
                None
            }
            Backing::Calendar(cal) => {
                while let Some((time, tagged)) = cal.peek() {
                    let seq = tagged.seq;
                    if self.cancelled.remove(&seq) {
                        cal.discard_next();
                    } else {
                        return Some(time);
                    }
                }
                None
            }
        }
    }

    /// Number of live (non-cancelled) pending events.
    pub fn len(&self) -> usize {
        let raw = match &self.backing {
            Backing::Heap(heap) => heap.len(),
            Backing::Calendar(cal) => cal.len(),
        };
        raw - self.cancelled.len()
    }

    /// `true` when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lists the live pending events as `(handle, time, payload)` triples,
    /// sorted by `(time, seq)` — the order `pop` would drain them.
    ///
    /// This is the *enabled set* used by the model checker: any listed
    /// event may be selected to fire next via [`take`]. Cancelled entries
    /// are excluded. Cost is O(n log n); the checker only runs on tiny
    /// configs where n is a handful.
    ///
    /// [`take`]: Scheduler::take
    pub fn pending(&self) -> Vec<(u64, SimTime, &E)> {
        let mut out: Vec<(u64, SimTime, &E)> = match &self.backing {
            Backing::Heap(heap) => heap
                .iter()
                .filter(|e| !self.cancelled.contains(&e.seq))
                .map(|e| (e.seq, e.time, &e.event))
                .collect(),
            Backing::Calendar(cal) => cal
                .iter()
                .filter(|(_, t)| !self.cancelled.contains(&t.seq))
                .map(|(time, t)| (t.seq, time, &t.event))
                .collect(),
        };
        out.sort_by_key(|&(seq, time, _)| (time, seq));
        out
    }

    /// Removes and fires a specific pending event by its schedule sequence
    /// number, advancing the clock monotonically to `max(now, time)`.
    ///
    /// This is the model checker's out-of-order firing primitive: unlike
    /// [`pop`], the selected event need not be the earliest, so the clock
    /// is *clamped* rather than assigned, and the returned [`Fired::time`]
    /// is the clamped clock — an event fired "late" happens *now* (time
    /// never moves backwards; per-entity event sequences observed by the
    /// model stay monotone, and relative `schedule_in` delays from the
    /// fired handler stay valid). When the taken event is the earliest
    /// pending one the clamp is a no-op and the result is byte-identical
    /// to `pop`; the seeded simulator never calls this.
    ///
    /// Returns `None` if no live entry with that sequence number exists.
    /// Heap backend only — the checker always runs on the heap.
    ///
    /// [`pop`]: Scheduler::pop
    pub fn take(&mut self, seq: u64) -> Option<Fired<E>> {
        if self.cancelled.contains(&seq) {
            return None;
        }
        let heap = match &mut self.backing {
            Backing::Heap(heap) => heap,
            Backing::Calendar(_) => {
                panic!("Scheduler::take requires the heap backend (model checker)")
            }
        };
        let mut entries = std::mem::take(heap).into_vec();
        let pos = entries.iter().position(|e| e.seq == seq);
        let entry = match pos {
            Some(p) => {
                let e = entries.swap_remove(p);
                *heap = BinaryHeap::from(entries);
                e
            }
            None => {
                *heap = BinaryHeap::from(entries);
                return None;
            }
        };
        if entry.time > self.now {
            self.now = entry.time;
        }
        self.popped += 1;
        Some(Fired {
            time: self.now,
            event: entry.event,
        })
    }

    /// Removes every live pending event matching `pred`, returning them
    /// sorted by `(time, seq)` — the order [`pop`] would have drained them.
    ///
    /// This is the partition primitive for the parallel backend: a worker
    /// bootstraps the full world, then strips the events it does not own;
    /// at a hand-off migration the departing host's pending events are
    /// extracted here and re-scheduled on the destination worker in the
    /// returned order, preserving FIFO tie-breaking across the move.
    /// Cancelled entries matching nothing are left in place; cancelled
    /// entries are never returned. Heap backend only, like [`take`] — the
    /// parallel backend always runs its per-worker schedulers on the heap.
    ///
    /// [`pop`]: Scheduler::pop
    /// [`take`]: Scheduler::take
    pub fn extract_where<F>(&mut self, mut pred: F) -> Vec<(SimTime, E)>
    where
        F: FnMut(&E) -> bool,
    {
        let heap = match &mut self.backing {
            Backing::Heap(heap) => heap,
            Backing::Calendar(_) => {
                panic!("Scheduler::extract_where requires the heap backend (parallel runner)")
            }
        };
        let entries = std::mem::take(heap).into_vec();
        let mut kept = Vec::with_capacity(entries.len());
        let mut out: Vec<Entry<E>> = Vec::new();
        for e in entries {
            if self.cancelled.contains(&e.seq) {
                // Dead entry: drop it for good, keeping `len()` exact.
                self.cancelled.remove(&e.seq);
                continue;
            }
            if pred(&e.event) {
                out.push(e);
            } else {
                kept.push(e);
            }
        }
        *heap = BinaryHeap::from(kept);
        out.sort_by_key(|e| (e.time, e.seq));
        out.into_iter().map(|e| (e.time, e.event)).collect()
    }

    /// Total events popped so far (a throughput counter for benchmarks).
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Total events ever scheduled.
    pub fn scheduled(&self) -> u64 {
        self.scheduled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::new(3.0), "c");
        s.schedule_at(SimTime::new(1.0), "a");
        s.schedule_at(SimTime::new(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.event).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(s.now(), SimTime::new(3.0));
    }

    #[test]
    fn fifo_within_ties() {
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule_at(SimTime::new(5.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.event).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut s = Scheduler::new();
        s.schedule_in(1.5, ());
        s.schedule_in(0.5, ());
        assert_eq!(s.now(), SimTime::ZERO);
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::new(0.5));
        s.pop().unwrap();
        assert_eq!(s.now(), SimTime::new(1.5));
        assert!(s.pop().is_none());
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut s = Scheduler::new();
        s.schedule_in(1.0, "first");
        s.pop().unwrap();
        s.schedule_in(1.0, "second");
        let fired = s.pop().unwrap();
        assert_eq!(fired.time, SimTime::new(2.0));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::new(2.0), ());
        s.pop().unwrap();
        s.schedule_at(SimTime::new(1.0), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut s = Scheduler::new();
        let h1 = s.schedule_at(SimTime::new(1.0), "a");
        s.schedule_at(SimTime::new(2.0), "b");
        assert_eq!(s.len(), 2);
        assert!(s.cancel(h1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop().unwrap().event, "b");
        assert!(s.pop().is_none());
    }

    #[test]
    fn double_cancel_is_false() {
        let mut s = Scheduler::new();
        let h = s.schedule_at(SimTime::new(1.0), ());
        assert!(s.cancel(h));
        assert!(!s.cancel(h));
    }

    #[test]
    fn cancel_unknown_handle_is_false() {
        let mut s: Scheduler<()> = Scheduler::new();
        assert!(!s.cancel(EventHandle(42)));
    }

    #[test]
    fn cancel_after_fire_is_false_and_keeps_len_exact() {
        // A fired handle must not poison the cancelled set: `len()` would
        // drift (and eventually underflow) on either backend.
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let mut s = Scheduler::with_backend(backend);
            let h = s.schedule_at(SimTime::new(1.0), "fires");
            s.schedule_at(SimTime::new(2.0), "stays");
            assert_eq!(s.pop().unwrap().event, "fires");
            assert!(!s.cancel(h), "{backend}: handle already fired");
            assert_eq!(s.len(), 1, "{backend}");
            assert_eq!(s.pop().unwrap().event, "stays");
            assert!(s.pop().is_none());
        }
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut s = Scheduler::new();
        let h = s.schedule_at(SimTime::new(1.0), "dead");
        s.schedule_at(SimTime::new(2.0), "live");
        s.cancel(h);
        assert_eq!(s.peek_time(), Some(SimTime::new(2.0)));
        assert_eq!(s.pop().unwrap().event, "live");
    }

    #[test]
    fn counters_track_activity() {
        let mut s = Scheduler::new();
        s.schedule_in(1.0, ());
        s.schedule_in(2.0, ());
        s.pop();
        assert_eq!(s.scheduled(), 2);
        assert_eq!(s.popped(), 1);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_scheduler_behaves() {
        let mut s: Scheduler<u8> = Scheduler::new();
        assert!(s.is_empty());
        assert_eq!(s.peek_time(), None);
        assert!(s.pop().is_none());
    }

    #[test]
    fn backend_roundtrip_and_names() {
        assert_eq!(QueueBackend::default(), QueueBackend::Heap);
        for b in [QueueBackend::Heap, QueueBackend::Calendar] {
            assert_eq!(QueueBackend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(QueueBackend::parse("splay"), None);
        let s: Scheduler<()> = Scheduler::with_backend(QueueBackend::Calendar);
        assert_eq!(s.backend(), QueueBackend::Calendar);
    }

    #[test]
    fn pending_lists_live_events_in_pop_order() {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let mut s = Scheduler::with_backend(backend);
            s.schedule_at(SimTime::new(2.0), "b");
            s.schedule_at(SimTime::new(1.0), "a");
            let dead = s.schedule_at(SimTime::new(1.5), "dead");
            s.schedule_at(SimTime::new(2.0), "b2");
            s.cancel(dead);
            let pend = s.pending();
            let evs: Vec<_> = pend.iter().map(|&(_, t, e)| (t, *e)).collect();
            assert_eq!(
                evs,
                vec![
                    (SimTime::new(1.0), "a"),
                    (SimTime::new(2.0), "b"),
                    (SimTime::new(2.0), "b2"),
                ],
                "{backend}"
            );
            // FIFO tie: the seq of "b" precedes the seq of "b2".
            assert!(pend[1].0 < pend[2].0, "{backend}");
        }
    }

    #[test]
    fn take_fires_out_of_order_and_clamps_clock() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::new(1.0), "early");
        let early_seq = s.pending()[0].0;
        s.schedule_at(SimTime::new(3.0), "late");
        let late_seq = s.pending()[1].0;
        // Fire the *late* event first: clock jumps to 3.0.
        let fired = s.take(late_seq).unwrap();
        assert_eq!(fired.event, "late");
        assert_eq!(s.now(), SimTime::new(3.0));
        // Firing the earlier event afterwards must not rewind the clock:
        // the late-fired event happens *now*, not at its stale timestamp.
        let fired = s.take(early_seq).unwrap();
        assert_eq!(fired.event, "early");
        assert_eq!(fired.time, SimTime::new(3.0));
        assert_eq!(s.now(), SimTime::new(3.0));
        assert!(s.is_empty());
        assert_eq!(s.popped(), 2);
        // Unknown / already-fired seqs return None and leave the set intact.
        assert!(s.take(early_seq).is_none());
        s.schedule_at(SimTime::new(4.0), "still-there");
        assert!(s.take(99).is_none());
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop().unwrap().event, "still-there");
    }

    #[test]
    fn extract_where_preserves_order_and_skips_cancelled() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::new(2.0), "b-keep");
        s.schedule_at(SimTime::new(1.0), "a-take");
        let dead = s.schedule_at(SimTime::new(1.5), "c-take");
        s.schedule_at(SimTime::new(1.0), "d-take");
        s.schedule_at(SimTime::new(3.0), "e-keep");
        s.cancel(dead);
        let taken = s.extract_where(|e| e.ends_with("take"));
        let got: Vec<_> = taken.iter().map(|(t, e)| (t.as_f64(), *e)).collect();
        // Sorted (time, seq): the two t=1.0 entries keep schedule order.
        assert_eq!(got, vec![(1.0, "a-take"), (1.0, "d-take")]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.pop().unwrap().event, "b-keep");
        assert_eq!(s.pop().unwrap().event, "e-keep");
        assert!(s.pop().is_none());
    }

    #[test]
    fn take_skips_cancelled_entries() {
        let mut s = Scheduler::new();
        let h = s.schedule_at(SimTime::new(1.0), "dead");
        let seq = s.pending()[0].0;
        s.cancel(h);
        assert!(s.take(seq).is_none());
        assert!(s.pending().is_empty());
    }

    #[test]
    fn cloned_scheduler_diverges_independently() {
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::new(1.0), "a");
        s.schedule_at(SimTime::new(2.0), "b");
        let mut fork = s.clone();
        assert_eq!(s.pop().unwrap().event, "a");
        assert_eq!(fork.pending().len(), 2);
        assert_eq!(fork.pop().unwrap().event, "a");
        assert_eq!(fork.pop().unwrap().event, "b");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn calendar_backend_matches_heap_semantics() {
        for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
            let mut s = Scheduler::with_backend(backend);
            // Ties, cancellation mid-stream, peek purging, reschedule after pop.
            s.schedule_at(SimTime::new(2.0), "b1");
            s.schedule_at(SimTime::new(2.0), "b2");
            let dead = s.schedule_at(SimTime::new(1.0), "dead");
            s.schedule_at(SimTime::new(3.0), "c");
            assert!(s.cancel(dead));
            assert_eq!(s.peek_time(), Some(SimTime::new(2.0)), "{backend}");
            assert_eq!(s.len(), 3);
            assert_eq!(s.pop().unwrap().event, "b1", "{backend}");
            assert_eq!(s.now(), SimTime::new(2.0));
            // Scheduling between now and the next pending event must work
            // even after a peek advanced the backend's scan position.
            s.schedule_at(SimTime::new(2.5), "mid");
            let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|f| f.event).collect();
            assert_eq!(order, vec!["b2", "mid", "c"], "{backend}");
        }
    }
}
