//! Generic simulation driver.
//!
//! A simulation is a [`Model`] (the state and event-handling logic) plus a
//! [`Scheduler`] (the pending-event set). [`run_until`] executes the standard
//! event loop: pop, dispatch, repeat, stopping at a time horizon or when the
//! event set drains. Models can also stop early by returning
//! [`Control::Stop`].

use std::time::Instant;

use crate::event::{Fired, Scheduler};
use crate::span::SpanProfiler;
use crate::stats::{LogHistogram, Tally};
use crate::time::SimTime;

/// Whether the event loop should continue after handling an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep processing events.
    Continue,
    /// Terminate the run immediately.
    Stop,
}

/// A discrete-event model: owns state, reacts to events, schedules more.
pub trait Model {
    /// The event payload type this model understands.
    type Event;

    /// Handles one fired event, scheduling any follow-ups on `sched`.
    fn handle(&mut self, sched: &mut Scheduler<Self::Event>, fired: Fired<Self::Event>)
        -> Control;
}

/// Outcome of a completed run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunOutcome {
    /// Number of events dispatched to the model.
    pub events_handled: u64,
    /// Simulation clock when the loop exited.
    pub end_time: SimTime,
    /// True when the loop exited because the horizon was reached (an event
    /// beyond the horizon remained pending), as opposed to draining or an
    /// explicit stop.
    pub hit_horizon: bool,
}

/// Runs the event loop until `horizon` (exclusive), the event set drains, or
/// the model requests a stop.
///
/// Events timestamped exactly at the horizon are *not* processed, matching
/// the usual "simulate T time units" convention: the measurement window is
/// `[0, T)`.
pub fn run_until<M: Model>(
    model: &mut M,
    sched: &mut Scheduler<M::Event>,
    horizon: SimTime,
) -> RunOutcome {
    let mut handled = 0;
    loop {
        match sched.peek_time() {
            None => {
                return RunOutcome {
                    events_handled: handled,
                    end_time: sched.now(),
                    hit_horizon: false,
                }
            }
            Some(t) if t >= horizon => {
                return RunOutcome {
                    events_handled: handled,
                    end_time: sched.now(),
                    hit_horizon: true,
                }
            }
            Some(_) => {}
        }
        let fired = sched.pop().expect("peeked event exists");
        handled += 1;
        if model.handle(sched, fired) == Control::Stop {
            return RunOutcome {
                events_handled: handled,
                end_time: sched.now(),
                hit_horizon: false,
            };
        }
    }
}

/// Wall-clock profile of the event loop, collected by
/// [`run_until_profiled`].
///
/// Everything here is measured on the host clock and therefore varies from
/// run to run; it is reported *alongside* the deterministic simulation
/// outputs and never feeds back into them (in particular, profile data is
/// kept out of trace streams, which must stay byte-identical across
/// same-seed runs).
#[derive(Debug, Clone)]
pub struct EngineProfile {
    /// Per-event dispatch latency in nanoseconds (pop + model handling).
    /// Geometric bins from 16 ns, ×2 per bin.
    pub dispatch_ns: LogHistogram,
    /// Pending-event-set size sampled before each dispatch.
    pub queue_depth: Tally,
    /// Events dispatched to the model.
    pub events_handled: u64,
    /// Total wall-clock time of the loop in nanoseconds.
    pub wall_ns: u64,
}

impl Default for EngineProfile {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineProfile {
    /// An empty profile with the standard dispatch-latency bin shape.
    /// Public so parallel backends can accumulate per-worker profiles.
    pub fn new() -> Self {
        EngineProfile {
            dispatch_ns: LogHistogram::new(16.0, 2.0, 32),
            queue_depth: Tally::new(),
            events_handled: 0,
            wall_ns: 0,
        }
    }

    /// Folds another profile into this one: histogram and tally merge
    /// observation-wise, event counts add, and wall time takes the max —
    /// workers run concurrently, so the slowest one bounds the loop.
    pub fn merge(&mut self, other: &EngineProfile) {
        self.dispatch_ns.merge(&other.dispatch_ns);
        self.queue_depth.merge(&other.queue_depth);
        self.events_handled += other.events_handled;
        self.wall_ns = self.wall_ns.max(other.wall_ns);
    }

    /// Average dispatch throughput over the whole run.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.events_handled as f64 / (self.wall_ns as f64 * 1e-9)
    }
}

/// [`run_until`] with wall-clock instrumentation of the hot loop.
///
/// Identical simulation semantics — same pop order, same horizon rule, same
/// stop handling — plus an [`EngineProfile`] of where real time went. The
/// per-event `Instant` reads cost a few tens of nanoseconds per dispatch, so
/// the uninstrumented [`run_until`] remains the default path.
pub fn run_until_profiled<M: Model>(
    model: &mut M,
    sched: &mut Scheduler<M::Event>,
    horizon: SimTime,
) -> (RunOutcome, EngineProfile) {
    let mut profile = EngineProfile::new();
    let started = std::time::Instant::now();
    let mut handled = 0;
    let outcome = loop {
        match sched.peek_time() {
            None => {
                break RunOutcome {
                    events_handled: handled,
                    end_time: sched.now(),
                    hit_horizon: false,
                }
            }
            Some(t) if t >= horizon => {
                break RunOutcome {
                    events_handled: handled,
                    end_time: sched.now(),
                    hit_horizon: true,
                }
            }
            Some(_) => {}
        }
        profile.queue_depth.record(sched.len() as f64);
        let t0 = std::time::Instant::now();
        let fired = sched.pop().expect("peeked event exists");
        handled += 1;
        let control = model.handle(sched, fired);
        profile.dispatch_ns.record(t0.elapsed().as_nanos() as f64);
        if control == Control::Stop {
            break RunOutcome {
                events_handled: handled,
                end_time: sched.now(),
                hit_horizon: false,
            };
        }
    };
    profile.events_handled = handled;
    profile.wall_ns = started.elapsed().as_nanos() as u64;
    (outcome, profile)
}

/// Throttled live progress reporting to stderr.
///
/// Purely observational: it reads the loop's counters and clocks and writes
/// to stderr, so enabling it cannot perturb the simulation, its RNG, or any
/// artifact byte. Reports are throttled twice over — an event-count mask
/// keeps the hot path to integer ops, and a one-second wall-clock gate keeps
/// the terminal readable on slow and fast runs alike.
#[derive(Debug)]
pub struct Progress {
    label: String,
    started: Instant,
    last_report: Instant,
}

impl Progress {
    /// Events between throttle checks (a power of two minus one, used as a
    /// mask).
    const EVENT_MASK: u64 = 0xFFF;

    /// Creates a reporter; `label` prefixes every line.
    pub fn new(label: &str) -> Self {
        let now = Instant::now();
        Progress {
            label: label.to_string(),
            started: now,
            last_report: now,
        }
    }

    /// Reports if enough events and wall time have passed; the driver calls
    /// this once per dispatched event with an `Instant` it already read.
    pub fn maybe_report(&mut self, events: u64, now_sim: SimTime, at: Instant) {
        if events & Self::EVENT_MASK != 0 {
            return;
        }
        if at.duration_since(self.last_report).as_secs_f64() < 1.0 {
            return;
        }
        self.last_report = at;
        self.report(events, now_sim, at);
    }

    /// Writes one final summary line unconditionally.
    pub fn finish(&self, events: u64, now_sim: SimTime) {
        self.report(events, now_sim, Instant::now());
    }

    fn report(&self, events: u64, now_sim: SimTime, at: Instant) {
        let secs = at.duration_since(self.started).as_secs_f64();
        let rate = if secs > 0.0 { events as f64 / secs } else { 0.0 };
        eprintln!(
            "{}: {events} events, t={:.1}, {rate:.0} events/sec",
            self.label,
            now_sim.as_f64()
        );
    }
}

/// [`run_until`] with span attribution, wall-clock profiling, and optional
/// live progress.
///
/// Identical simulation semantics to [`run_until`] — same pop order, same
/// horizon rule, same stop handling. On top it:
///
/// * opens one span per dispatched event, named by `classify(&event)`, on
///   `spans` (nested spans opened by the model during handling attach
///   beneath it — share the profiler with the model by cloning the handle);
/// * chains the spans gap-free: the `Instant` that closes event *n* opens
///   event *n*+1, so per-event-type span totals tile the loop's wall time
///   (whole-run coverage is within one scheduler peek of 100%);
/// * records an [`EngineProfile`] (here `dispatch_ns` covers the full
///   per-event loop slice: peek + pop + handle);
/// * drives the optional [`Progress`] reporter off clocks it already read.
///
/// With a disabled profiler and no progress reporter this degenerates to
/// [`run_until_profiled`]'s cost: two `Instant` reads per event.
pub fn run_until_spanned<M: Model>(
    model: &mut M,
    sched: &mut Scheduler<M::Event>,
    horizon: SimTime,
    spans: &SpanProfiler,
    classify: fn(&M::Event) -> &'static str,
    mut progress: Option<&mut Progress>,
) -> (RunOutcome, EngineProfile) {
    let mut profile = EngineProfile::new();
    let started = Instant::now();
    let mut mark = started;
    let mut handled = 0;
    let outcome = loop {
        match sched.peek_time() {
            None => {
                break RunOutcome {
                    events_handled: handled,
                    end_time: sched.now(),
                    hit_horizon: false,
                }
            }
            Some(t) if t >= horizon => {
                break RunOutcome {
                    events_handled: handled,
                    end_time: sched.now(),
                    hit_horizon: true,
                }
            }
            Some(_) => {}
        }
        profile.queue_depth.record(sched.len() as f64);
        let fired = sched.pop().expect("peeked event exists");
        handled += 1;
        let tok = spans.enter_at(classify(&fired.event), mark);
        let control = model.handle(sched, fired);
        let now = Instant::now();
        spans.exit_at(tok, now);
        profile.dispatch_ns.record(now.duration_since(mark).as_nanos() as f64);
        if let Some(p) = progress.as_deref_mut() {
            p.maybe_report(handled, sched.now(), now);
        }
        mark = now;
        if control == Control::Stop {
            break RunOutcome {
                events_handled: handled,
                end_time: sched.now(),
                hit_horizon: false,
            };
        }
    };
    profile.events_handled = handled;
    profile.wall_ns = started.elapsed().as_nanos() as u64;
    if let Some(p) = progress {
        p.finish(handled, outcome.end_time);
    }
    (outcome, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that spawns a chain of `n` events spaced 1.0 apart.
    struct Chain {
        remaining: u32,
        stop_at: Option<u32>,
        seen: Vec<f64>,
    }

    impl Model for Chain {
        type Event = ();

        fn handle(&mut self, sched: &mut Scheduler<()>, fired: Fired<()>) -> Control {
            self.seen.push(fired.time.as_f64());
            if let Some(s) = self.stop_at {
                if self.seen.len() as u32 >= s {
                    return Control::Stop;
                }
            }
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule_in(1.0, ());
            }
            Control::Continue
        }
    }

    #[test]
    fn drains_when_no_more_events() {
        let mut m = Chain {
            remaining: 4,
            stop_at: None,
            seen: vec![],
        };
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::ZERO, ());
        let out = run_until(&mut m, &mut s, SimTime::new(100.0));
        assert_eq!(out.events_handled, 5);
        assert!(!out.hit_horizon);
        assert_eq!(m.seen, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn horizon_is_exclusive() {
        let mut m = Chain {
            remaining: u32::MAX,
            stop_at: None,
            seen: vec![],
        };
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::ZERO, ());
        let out = run_until(&mut m, &mut s, SimTime::new(3.0));
        assert!(out.hit_horizon);
        // Events at 0,1,2 run; the one at 3.0 does not.
        assert_eq!(m.seen, vec![0.0, 1.0, 2.0]);
        assert_eq!(out.end_time, SimTime::new(2.0));
    }

    #[test]
    fn model_can_stop_early() {
        let mut m = Chain {
            remaining: u32::MAX,
            stop_at: Some(2),
            seen: vec![],
        };
        let mut s = Scheduler::new();
        s.schedule_at(SimTime::ZERO, ());
        let out = run_until(&mut m, &mut s, SimTime::new(100.0));
        assert_eq!(out.events_handled, 2);
        assert!(!out.hit_horizon);
    }

    #[test]
    fn profiled_run_matches_plain_run() {
        let mk = || Chain {
            remaining: 20,
            stop_at: None,
            seen: vec![],
        };
        let mut m1 = mk();
        let mut s1 = Scheduler::new();
        s1.schedule_at(SimTime::ZERO, ());
        let plain = run_until(&mut m1, &mut s1, SimTime::new(10.5));

        let mut m2 = mk();
        let mut s2 = Scheduler::new();
        s2.schedule_at(SimTime::ZERO, ());
        let (profiled, profile) = run_until_profiled(&mut m2, &mut s2, SimTime::new(10.5));

        assert_eq!(plain, profiled);
        assert_eq!(m1.seen, m2.seen);
        assert_eq!(profile.events_handled, plain.events_handled);
        assert_eq!(profile.dispatch_ns.count(), plain.events_handled);
        assert_eq!(profile.queue_depth.count(), plain.events_handled);
        assert!(profile.events_per_sec() > 0.0);
    }

    #[test]
    fn spanned_run_matches_plain_run_and_tiles_wall_time() {
        let mk = || Chain {
            remaining: 200,
            stop_at: None,
            seen: vec![],
        };
        let mut m1 = mk();
        let mut s1 = Scheduler::new();
        s1.schedule_at(SimTime::ZERO, ());
        let plain = run_until(&mut m1, &mut s1, SimTime::new(150.5));

        let spans = SpanProfiler::enabled();
        let mut m2 = mk();
        let mut s2 = Scheduler::new();
        s2.schedule_at(SimTime::ZERO, ());
        let (spanned, profile) =
            run_until_spanned(&mut m2, &mut s2, SimTime::new(150.5), &spans, |_| "tick", None);

        assert_eq!(plain, spanned);
        assert_eq!(m1.seen, m2.seen);
        assert_eq!(profile.events_handled, plain.events_handled);
        assert_eq!(profile.dispatch_ns.count(), plain.events_handled);

        let snap = spans.snapshot();
        assert_eq!(snap.row("tick").unwrap().count, plain.events_handled);
        // Gap-free chaining: the per-event spans cover (almost) the whole
        // loop. Allow generous slack for the final peek and clock noise.
        assert!(
            snap.top_level_wall_ns() as f64 >= 0.5 * profile.wall_ns as f64
                || profile.wall_ns < 10_000
        );
    }

    #[test]
    fn disabled_spans_and_no_progress_change_nothing() {
        let mk = || Chain {
            remaining: 30,
            stop_at: None,
            seen: vec![],
        };
        let mut m1 = mk();
        let mut s1 = Scheduler::new();
        s1.schedule_at(SimTime::ZERO, ());
        let plain = run_until(&mut m1, &mut s1, SimTime::new(20.5));

        let spans = SpanProfiler::disabled();
        let mut m2 = mk();
        let mut s2 = Scheduler::new();
        s2.schedule_at(SimTime::ZERO, ());
        let (spanned, _) =
            run_until_spanned(&mut m2, &mut s2, SimTime::new(20.5), &spans, |_| "tick", None);
        assert_eq!(plain, spanned);
        assert!(spans.snapshot().is_empty());
    }

    #[test]
    fn empty_schedule_returns_immediately() {
        let mut m = Chain {
            remaining: 0,
            stop_at: None,
            seen: vec![],
        };
        let mut s = Scheduler::new();
        let out = run_until(&mut m, &mut s, SimTime::new(10.0));
        assert_eq!(out.events_handled, 0);
        assert_eq!(out.end_time, SimTime::ZERO);
    }
}
