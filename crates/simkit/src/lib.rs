//! `simkit` — a small, deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the `mck` mobile-checkpointing simulator.
//! It provides:
//!
//! * [`time::SimTime`] — totally ordered simulation time;
//! * [`event::Scheduler`] — the pending-event set, with deterministic FIFO
//!   tie-breaking and O(1) cancellation;
//! * [`calendar::CalendarQueue`] — the classic O(1)-amortized alternative
//!   pending-event structure, equivalence-tested against the heap;
//! * [`driver`] — the generic pop/dispatch event loop;
//! * [`pool::JobPool`] — a bounded work-stealing job pool that runs
//!   independent jobs (whole simulation replications) across cores with
//!   panic capture and deterministic, submission-ordered results;
//! * [`rng::SimRng`] — a self-contained xoshiro256++ RNG with
//!   order-independent substreams and the distributions the paper's model
//!   needs (exponential, Bernoulli, discrete uniform);
//! * [`stats`] — counters, Welford tallies, time-weighted averages,
//!   log-binned histograms, batch means, and Student-t confidence
//!   intervals for replication summaries;
//! * [`log`] — a bounded, taggable event log for post-mortem debugging;
//! * [`metrics`] — a named counter/gauge/histogram registry, near-zero
//!   cost when disabled, snapshotable to JSON;
//! * [`span`] — a hierarchical span profiler attributing wall-clock time,
//!   counts, and bytes to per-event-type and per-phase spans, with
//!   deterministic (host-independent) aggregation kept apart from timing;
//! * [`trace`] — a typed, deterministic event stream with pluggable sinks
//!   (bounded memory ring, JSON Lines);
//! * [`json`] — a dependency-free JSON value type, writer, and parser with
//!   deterministic output, used by metrics snapshots, trace streams, and
//!   experiment artifacts.
//!
//! Everything is `forbid(unsafe_code)`, allocation-light, and exactly
//! reproducible given a seed.
//!
//! # Example
//!
//! ```
//! use simkit::prelude::*;
//!
//! // A Poisson arrival counter: count arrivals for 100 t.u.
//! struct Arrivals {
//!     rng: SimRng,
//!     count: u64,
//! }
//!
//! impl Model for Arrivals {
//!     type Event = ();
//!     fn handle(&mut self, sched: &mut Scheduler<()>, _fired: Fired<()>) -> Control {
//!         self.count += 1;
//!         let gap = self.rng.exp(2.0);
//!         sched.schedule_in(gap, ());
//!         Control::Continue
//!     }
//! }
//!
//! let mut model = Arrivals { rng: SimRng::new(1), count: 0 };
//! let mut sched = Scheduler::new();
//! sched.schedule_at(SimTime::ZERO, ());
//! let out = run_until(&mut model, &mut sched, SimTime::new(100.0));
//! assert!(out.hit_horizon);
//! assert!(model.count > 20); // ~50 expected
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calendar;
pub mod driver;
pub mod event;
pub mod json;
pub mod log;
pub mod metrics;
pub mod pool;
pub mod rng;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::calendar::CalendarQueue;
    pub use crate::driver::{
        run_until, run_until_profiled, run_until_spanned, Control, EngineProfile, Model,
        Progress, RunOutcome,
    };
    pub use crate::event::{EventHandle, Fired, QueueBackend, Scheduler};
    pub use crate::json::Json;
    pub use crate::log::{EventLog, Level, LogEntry};
    pub use crate::metrics::{MetricsRegistry, MetricsSnapshot};
    pub use crate::pool::{Job, JobPanic, JobPool};
    pub use crate::rng::SimRng;
    pub use crate::span::{SpanProfiler, SpanRow, SpanScope, SpanSnapshot, SpanToken};
    pub use crate::stats::{BatchMeans, Counter, Estimate, LogHistogram, Tally, TimeWeighted};
    pub use crate::time::SimTime;
    pub use crate::trace::{
        CkptClass, JsonlSink, MemorySink, TraceEvent, TraceRecord, TraceSink, Tracer,
    };
}
