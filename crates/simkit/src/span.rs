//! Hierarchical span profiler.
//!
//! A [`SpanProfiler`] attributes host wall-clock time, call counts and byte
//! volumes to a tree of named spans: the driver opens one span per dispatched
//! event (named after the event type) and components open nested spans around
//! their expensive phases (piggyback encode/decode, checkpoint transfer, log
//! append, recovery planning). The result answers "where do the events/sec
//! go" at per-event-type and per-phase granularity — the cost breakdown the
//! paper's analysis is built on.
//!
//! Two properties shape the design:
//!
//! * **Observation only.** A profiler never schedules events, never consumes
//!   randomness, and never feeds back into the simulation; enabling it
//!   cannot change a single byte of any deterministic output. A *disabled*
//!   profiler (the default) is a `None` and every operation is a branch and
//!   a return.
//! * **Deterministic aggregation.** A frozen [`SpanSnapshot`] keeps the
//!   deterministic dimensions (span paths, counts, bytes) strictly apart
//!   from the host-dependent wall-clock column, so artifacts can place the
//!   former in diffable sections and quarantine the latter under `timing`.
//!
//! The profiler is a cheap-clone handle (`Rc<RefCell<…>>`): the event-loop
//! driver and the model share clones, which is what lets the driver open the
//! per-event span while the model opens nested phase spans inside the same
//! tree. The handle is deliberately `!Send` — one profiler belongs to one
//! simulation, and cross-thread aggregation goes through snapshot merging.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Instant;

use crate::json::Json;

const ROOT: usize = 0;

#[derive(Debug)]
struct Node {
    name: &'static str,
    children: Vec<usize>,
    count: u64,
    bytes: u64,
    wall_ns: u64,
}

#[derive(Debug)]
struct Tree {
    nodes: Vec<Node>,
    /// Indices of currently open spans; `stack[0]` is the always-open root.
    stack: Vec<usize>,
}

impl Tree {
    fn new() -> Self {
        Tree {
            nodes: vec![Node {
                name: "",
                children: Vec::new(),
                count: 0,
                bytes: 0,
                wall_ns: 0,
            }],
            stack: vec![ROOT],
        }
    }

    /// Index of `parent`'s child named `name`, creating it if absent.
    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(&c) = self.nodes[parent]
            .children
            .iter()
            .find(|&&c| self.nodes[c].name == name)
        {
            return c;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name,
            children: Vec::new(),
            count: 0,
            bytes: 0,
            wall_ns: 0,
        });
        self.nodes[parent].children.push(idx);
        idx
    }
}

/// Receipt for one opened span; hand it back to [`SpanProfiler::exit`].
///
/// Tokens are intentionally not `Copy`/`Clone`: each opened span is closed
/// exactly once, and spans close in LIFO order.
#[derive(Debug)]
pub struct SpanToken {
    idx: usize,
    start: Option<Instant>,
}

impl SpanToken {
    const NOOP: SpanToken = SpanToken {
        idx: usize::MAX,
        start: None,
    };
}

/// Interns a runtime-built span name, returning a `&'static str`.
///
/// Span nodes store `&'static str` names so the hot path never hashes or
/// clones strings; names composed at runtime (the parallel runner's
/// per-worker `"worker3"` labels) go through this table once at setup time.
/// Leaks one small allocation per distinct name for the process lifetime,
/// bounded in practice by the worker count.
pub fn intern_name(name: &str) -> &'static str {
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};
    static TABLE: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut map = TABLE.get_or_init(|| Mutex::new(HashMap::new())).lock().unwrap();
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    map.insert(name.to_owned(), leaked);
    leaked
}

/// Cheap-clone handle to a span tree; disabled by default.
///
/// See the [module docs](self) for the design. All operations on a disabled
/// profiler are near-zero-cost no-ops, so instrumentation stays compiled in
/// unconditionally.
#[derive(Debug, Clone, Default)]
pub struct SpanProfiler(Option<Rc<RefCell<Tree>>>);

impl SpanProfiler {
    /// An enabled profiler with an empty span tree.
    pub fn enabled() -> Self {
        SpanProfiler(Some(Rc::new(RefCell::new(Tree::new()))))
    }

    /// A disabled profiler: every operation is a no-op.
    pub fn disabled() -> Self {
        SpanProfiler(None)
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Opens a span named `name` nested under the currently innermost open
    /// span, reading the host clock for its start time.
    pub fn enter(&self, name: &'static str) -> SpanToken {
        if self.0.is_none() {
            return SpanToken::NOOP;
        }
        self.enter_at(name, Instant::now())
    }

    /// Opens a span whose start time the caller already read.
    ///
    /// The event-loop driver uses this to chain consecutive event spans
    /// without gaps: the `Instant` that closed event *n* opens event *n*+1,
    /// so the per-event spans tile the loop's wall time exactly.
    pub fn enter_at(&self, name: &'static str, at: Instant) -> SpanToken {
        let Some(tree) = &self.0 else {
            return SpanToken::NOOP;
        };
        let mut t = tree.borrow_mut();
        let parent = *t.stack.last().expect("root span is always open");
        let idx = t.child(parent, name);
        t.nodes[idx].count += 1;
        t.stack.push(idx);
        SpanToken {
            idx,
            start: Some(at),
        }
    }

    /// Closes the innermost open span, reading the host clock for its end.
    pub fn exit(&self, tok: SpanToken) {
        if tok.start.is_some() {
            self.exit_at(tok, Instant::now());
        }
    }

    /// Closes a span at an end time the caller already read.
    pub fn exit_at(&self, tok: SpanToken, at: Instant) {
        let (Some(tree), Some(start)) = (&self.0, tok.start) else {
            return;
        };
        let mut t = tree.borrow_mut();
        let top = t.stack.pop().expect("exit without matching enter");
        debug_assert_eq!(top, tok.idx, "spans must close in LIFO order");
        t.nodes[top].wall_ns += at.duration_since(start).as_nanos() as u64;
    }

    /// Attributes `n` bytes to the innermost open span.
    pub fn add_bytes(&self, n: u64) {
        let Some(tree) = &self.0 else {
            return;
        };
        let mut t = tree.borrow_mut();
        let top = *t.stack.last().expect("root span is always open");
        t.nodes[top].bytes += n;
    }

    /// Opens a span closed automatically when the returned guard drops.
    pub fn scope(&self, name: &'static str) -> SpanScope {
        SpanScope {
            profiler: self.clone(),
            token: Some(self.enter(name)),
        }
    }

    /// Freezes the current tree into a flat, path-sorted snapshot.
    ///
    /// Open spans contribute their counts and bytes but only the wall time
    /// of already-closed entries; snapshot after the run completes.
    pub fn snapshot(&self) -> SpanSnapshot {
        let Some(tree) = &self.0 else {
            return SpanSnapshot::default();
        };
        let t = tree.borrow();
        let mut rows = Vec::with_capacity(t.nodes.len().saturating_sub(1));
        // Depth-first walk building ";"-joined paths.
        let mut pending: Vec<(usize, String)> = t.nodes[ROOT]
            .children
            .iter()
            .rev()
            .map(|&c| (c, t.nodes[c].name.to_string()))
            .collect();
        while let Some((idx, path)) = pending.pop() {
            let node = &t.nodes[idx];
            for &c in node.children.iter().rev() {
                pending.push((c, format!("{path};{}", t.nodes[c].name)));
            }
            rows.push(SpanRow {
                path,
                count: node.count,
                bytes: node.bytes,
                wall_ns: node.wall_ns,
            });
        }
        rows.sort_by(|a, b| a.path.cmp(&b.path));
        SpanSnapshot { rows }
    }
}

/// RAII guard for a span: closes it on drop.
#[derive(Debug)]
pub struct SpanScope {
    profiler: SpanProfiler,
    token: Option<SpanToken>,
}

impl SpanScope {
    /// Attributes `n` bytes to this (innermost open) span.
    pub fn add_bytes(&self, n: u64) {
        self.profiler.add_bytes(n);
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        if let Some(tok) = self.token.take() {
            self.profiler.exit(tok);
        }
    }
}

/// One aggregated span: its tree position and accumulated totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// `;`-joined path from the tree root, e.g. `"deliver;piggyback.decode"`.
    pub path: String,
    /// Times the span was entered.
    pub count: u64,
    /// Bytes attributed to the span.
    pub bytes: u64,
    /// Host wall-clock nanoseconds spent inside the span (including
    /// children). Host-dependent: artifacts must keep this column under a
    /// `timing` member, apart from the deterministic columns.
    pub wall_ns: u64,
}

/// A frozen span tree: flat rows sorted by path.
///
/// The flat form makes merging across runs and folded-stack export trivial,
/// and the path sort makes aggregation order-independent: merging snapshots
/// in any order yields identical rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Aggregated spans sorted by `path`.
    pub rows: Vec<SpanRow>,
}

impl SpanSnapshot {
    /// Looks up a row by its `;`-joined path.
    pub fn row(&self, path: &str) -> Option<&SpanRow> {
        self.rows
            .binary_search_by(|r| r.path.as_str().cmp(path))
            .ok()
            .map(|i| &self.rows[i])
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Adds `other`'s rows into this snapshot, summing matching paths and
    /// inserting new ones in order. Commutative and associative over the
    /// deterministic columns, so cross-run aggregation is order-independent.
    pub fn merge(&mut self, other: &SpanSnapshot) {
        for r in &other.rows {
            match self.rows.binary_search_by(|x| x.path.cmp(&r.path)) {
                Ok(i) => {
                    self.rows[i].count += r.count;
                    self.rows[i].bytes += r.bytes;
                    self.rows[i].wall_ns += r.wall_ns;
                }
                Err(i) => self.rows.insert(i, r.clone()),
            }
        }
    }

    /// Total wall time of the top-level spans (paths without `;`).
    ///
    /// With the driver's gap-free span chaining this sums to (almost
    /// exactly) the event loop's total wall time, which is the acceptance
    /// check `mck profile` reports as `coverage`.
    pub fn top_level_wall_ns(&self) -> u64 {
        self.rows
            .iter()
            .filter(|r| !r.path.contains(';'))
            .map(|r| r.wall_ns)
            .sum()
    }

    /// Folded-stack export (`path self_wall_ns` per line), directly
    /// consumable by flamegraph tooling. Each span's value is its *self*
    /// time: total wall minus the wall of its direct children, clamped at
    /// zero (clock jitter can make a child nominally outlast its parent).
    pub fn to_folded(&self) -> String {
        let mut self_ns: Vec<u64> = self.rows.iter().map(|r| r.wall_ns).collect();
        for (i, r) in self.rows.iter().enumerate() {
            if let Some(cut) = r.path.rfind(';') {
                let parent = &r.path[..cut];
                if let Ok(j) = self
                    .rows
                    .binary_search_by(|x| x.path.as_str().cmp(parent))
                {
                    self_ns[j] = self_ns[j].saturating_sub(self.rows[i].wall_ns);
                }
            }
        }
        let mut out = String::new();
        for (r, &ns) in self.rows.iter().zip(&self_ns) {
            writeln!(out, "{} {}", r.path, ns).expect("string write");
        }
        out
    }

    /// The deterministic columns (path, count, bytes) as a JSON array.
    /// Identical across same-seed runs regardless of host speed.
    pub fn deterministic_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("path".into(), Json::str(&r.path)),
                        ("count".into(), Json::uint(r.count)),
                        ("bytes".into(), Json::uint(r.bytes)),
                    ])
                })
                .collect(),
        )
    }

    /// The host-dependent wall-clock column as a JSON array; artifacts must
    /// place this under a `timing` member.
    pub fn timing_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("path".into(), Json::str(&r.path)),
                        ("wall_ns".into(), Json::uint(r.wall_ns)),
                    ])
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_is_noop() {
        let p = SpanProfiler::disabled();
        assert!(!p.is_enabled());
        let tok = p.enter("a");
        p.add_bytes(100);
        p.exit(tok);
        drop(p.scope("b"));
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn nesting_builds_paths_and_counts() {
        let p = SpanProfiler::enabled();
        for _ in 0..3 {
            let ev = p.enter("deliver");
            {
                let s = p.scope("piggyback.decode");
                s.add_bytes(4);
            }
            p.exit(ev);
        }
        let mob = p.enter("mobility");
        p.exit(mob);
        let snap = p.snapshot();
        let paths: Vec<&str> = snap.rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["deliver", "deliver;piggyback.decode", "mobility"]);
        assert_eq!(snap.row("deliver").unwrap().count, 3);
        assert_eq!(snap.row("deliver;piggyback.decode").unwrap().bytes, 12);
        assert_eq!(snap.row("mobility").unwrap().count, 1);
        assert!(snap.row("nope").is_none());
    }

    #[test]
    fn bytes_attach_to_innermost_open_span() {
        let p = SpanProfiler::enabled();
        let outer = p.enter("outer");
        p.add_bytes(1);
        let inner = p.enter("inner");
        p.add_bytes(10);
        p.exit(inner);
        p.add_bytes(2);
        p.exit(outer);
        let snap = p.snapshot();
        assert_eq!(snap.row("outer").unwrap().bytes, 3);
        assert_eq!(snap.row("outer;inner").unwrap().bytes, 10);
    }

    #[test]
    fn clones_share_one_tree() {
        let p = SpanProfiler::enabled();
        let q = p.clone();
        let tok = p.enter("event");
        let nested = q.scope("phase"); // opens under "event" via the clone
        drop(nested);
        p.exit(tok);
        let snap = q.snapshot();
        assert_eq!(snap.row("event;phase").unwrap().count, 1);
    }

    #[test]
    fn merge_is_order_independent_on_deterministic_columns() {
        let mk = |names: &[&'static str]| {
            let p = SpanProfiler::enabled();
            for &n in names {
                let t = p.enter(n);
                p.add_bytes(n.len() as u64);
                p.exit(t);
            }
            p.snapshot()
        };
        let a = mk(&["x", "y", "x"]);
        let b = mk(&["y", "z"]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        let strip = |s: &SpanSnapshot| {
            s.rows
                .iter()
                .map(|r| (r.path.clone(), r.count, r.bytes))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&ab), strip(&ba));
        assert_eq!(ab.row("x").unwrap().count, 2);
        assert_eq!(ab.row("y").unwrap().count, 2);
        assert_eq!(ab.row("z").unwrap().count, 1);
    }

    #[test]
    fn folded_output_uses_self_time() {
        let snap = SpanSnapshot {
            rows: vec![
                SpanRow {
                    path: "ev".into(),
                    count: 1,
                    bytes: 0,
                    wall_ns: 100,
                },
                SpanRow {
                    path: "ev;sub".into(),
                    count: 1,
                    bytes: 0,
                    wall_ns: 30,
                },
            ],
        };
        let folded = snap.to_folded();
        assert_eq!(folded, "ev 70\nev;sub 30\n");
    }

    #[test]
    fn top_level_wall_ignores_nested_rows() {
        let snap = SpanSnapshot {
            rows: vec![
                SpanRow {
                    path: "a".into(),
                    count: 1,
                    bytes: 0,
                    wall_ns: 5,
                },
                SpanRow {
                    path: "a;b".into(),
                    count: 1,
                    bytes: 0,
                    wall_ns: 4,
                },
                SpanRow {
                    path: "c".into(),
                    count: 1,
                    bytes: 0,
                    wall_ns: 7,
                },
            ],
        };
        assert_eq!(snap.top_level_wall_ns(), 12);
    }

    #[test]
    fn deterministic_json_has_no_wall_clock() {
        let p = SpanProfiler::enabled();
        let t = p.enter("ev");
        p.exit(t);
        let det = p.snapshot().deterministic_json().to_compact();
        assert!(det.contains("\"path\""));
        assert!(!det.contains("wall_ns"));
        let timing = p.snapshot().timing_json().to_compact();
        assert!(timing.contains("wall_ns"));
    }
}
