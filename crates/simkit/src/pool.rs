//! Bounded work-stealing job pool for embarrassingly parallel runs.
//!
//! The experiment grid of the paper is hundreds of independent simulation
//! runs (figures × sweep points × protocols × replications). [`JobPool`]
//! executes such a job list across a fixed set of worker threads:
//!
//! * **Bounded** — one pool sized from [`std::thread::available_parallelism`]
//!   (or an explicit worker count), never one OS thread per job.
//! * **Work-stealing** — jobs start in a shared injector; each worker drains
//!   a small batch into its own deque, pops its own work LIFO, and steals
//!   FIFO from siblings when both its deque and the injector are empty.
//!   The queues are coarse `Mutex`es, which is plenty: jobs here are whole
//!   simulation runs (milliseconds each), not microtasks.
//! * **Deterministic collection** — results are returned in job submission
//!   order no matter which worker ran what, so replication summaries are
//!   independent of the worker count.
//! * **Panic capture** — a panicking job does not abort the process via a
//!   bare `join().expect`; the payload is caught together with the job's
//!   context string (e.g. `"tp t_switch=500 seed=42"`) so the caller can
//!   report *which* configuration failed before propagating.
//!
//! Determinism contract: the pool never shares mutable state between jobs;
//! each job owns its RNG (seeded from the job description), so the output
//! of `run` is a pure function of the job list regardless of `workers`.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// One unit of work: a context label (for panic reports) plus a closure.
pub struct Job<'a, T> {
    /// Human-readable description of the job, echoed in panic reports.
    pub context: String,
    /// The work itself; runs on exactly one worker thread.
    pub work: Box<dyn FnOnce() -> T + Send + 'a>,
}

impl<'a, T> Job<'a, T> {
    /// Builds a job from a context label and a closure.
    pub fn new(context: impl Into<String>, work: impl FnOnce() -> T + Send + 'a) -> Self {
        Job {
            context: context.into(),
            work: Box::new(work),
        }
    }
}

/// A captured panic from one job, with enough context to identify it.
#[derive(Debug, Clone)]
pub struct JobPanic {
    /// Submission index of the failing job.
    pub index: usize,
    /// The job's context label (seed/config description).
    pub context: String,
    /// Stringified panic payload (`&str`/`String` payloads; otherwise a
    /// placeholder).
    pub message: String,
}

impl std::fmt::Display for JobPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job #{} [{}] panicked: {}",
            self.index, self.context, self.message
        )
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// How many jobs a worker pulls from the injector per refill. Small enough
/// to keep the tail balanced, large enough to amortize the injector lock.
const REFILL_BATCH: usize = 4;

/// A bounded work-stealing thread pool; see the module docs.
#[derive(Debug, Clone)]
pub struct JobPool {
    workers: usize,
}

impl JobPool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        JobPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized from [`std::thread::available_parallelism`] (1 if the
    /// host cannot report it).
    pub fn with_default_size() -> Self {
        Self::new(default_workers())
    }

    /// Number of worker threads `run` will use.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job, returning results in submission order.
    ///
    /// On panic inside any job, the remaining queued jobs are abandoned
    /// (in-flight jobs finish), and all captured panics are returned in
    /// submission order so the caller can report them before propagating.
    pub fn run<'a, T: Send>(&self, jobs: Vec<Job<'a, T>>) -> Result<Vec<T>, Vec<JobPanic>> {
        let n_jobs = jobs.len();
        if n_jobs == 0 {
            return Ok(Vec::new());
        }
        if self.workers == 1 || n_jobs == 1 {
            return run_sequential(jobs);
        }

        let workers = self.workers.min(n_jobs);
        let injector: JobQueue<'a, T> = Mutex::new(jobs.into_iter().enumerate().collect());
        let deques: Vec<JobQueue<'a, T>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let results: Mutex<Vec<Option<T>>> =
            Mutex::new((0..n_jobs).map(|_| None).collect());
        let panics: Mutex<Vec<JobPanic>> = Mutex::new(Vec::new());
        let abort = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for me in 0..workers {
                let injector = &injector;
                let deques = &deques;
                let results = &results;
                let panics = &panics;
                let abort = &abort;
                scope.spawn(move || {
                    while !abort.load(Ordering::Relaxed) {
                        let job = next_job(me, injector, deques);
                        let Some((index, job)) = job else { break };
                        let context = job.context;
                        match catch_unwind(AssertUnwindSafe(job.work)) {
                            Ok(value) => {
                                results.lock().expect("results lock")[index] = Some(value);
                            }
                            Err(payload) => {
                                panics.lock().expect("panics lock").push(JobPanic {
                                    index,
                                    context,
                                    message: payload_message(payload.as_ref()),
                                });
                                abort.store(true, Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });

        let mut panics = panics.into_inner().expect("panics lock");
        if panics.is_empty() {
            let results = results.into_inner().expect("results lock");
            Ok(results
                .into_iter()
                .map(|r| r.expect("every job ran exactly once"))
                .collect())
        } else {
            panics.sort_by_key(|p| p.index);
            Err(panics)
        }
    }
}

/// Inline fallback used for one worker or one job: same panic capture,
/// no threads.
fn run_sequential<T>(jobs: Vec<Job<'_, T>>) -> Result<Vec<T>, Vec<JobPanic>> {
    let mut out = Vec::with_capacity(jobs.len());
    for (index, job) in jobs.into_iter().enumerate() {
        let context = job.context;
        match catch_unwind(AssertUnwindSafe(job.work)) {
            Ok(value) => out.push(value),
            Err(payload) => {
                return Err(vec![JobPanic {
                    index,
                    context,
                    message: payload_message(payload.as_ref()),
                }]);
            }
        }
    }
    Ok(out)
}

/// A lock-guarded deque of submission-indexed jobs (the injector and each
/// worker's local deque share this shape).
type JobQueue<'a, T> = Mutex<VecDeque<(usize, Job<'a, T>)>>;

/// Worker `me`'s source order: own deque (LIFO), injector batch, steal
/// from siblings (FIFO).
fn next_job<'q, 'a, T>(
    me: usize,
    injector: &'q JobQueue<'a, T>,
    deques: &'q [JobQueue<'a, T>],
) -> Option<(usize, Job<'a, T>)> {
    if let Some(job) = deques[me].lock().expect("deque lock").pop_back() {
        return Some(job);
    }
    {
        let mut inj = injector.lock().expect("injector lock");
        if !inj.is_empty() {
            let take = REFILL_BATCH.min(inj.len());
            let mut mine = deques[me].lock().expect("deque lock");
            for _ in 0..take {
                mine.push_back(inj.pop_front().expect("checked non-empty"));
            }
            return mine.pop_back();
        }
    }
    for off in 1..deques.len() {
        let victim = (me + off) % deques.len();
        if let Some(job) = deques[victim].lock().expect("deque lock").pop_front() {
            return Some(job);
        }
    }
    None
}

/// Host parallelism: `available_parallelism` with a floor of 1.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_submission_order() {
        let pool = JobPool::new(4);
        let jobs: Vec<Job<'_, usize>> = (0..64)
            .map(|i| Job::new(format!("job {i}"), move || i * 10))
            .collect();
        let out = pool.run(jobs).expect("no panics");
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_matches_multi_worker() {
        let jobs = |n: usize| -> Vec<Job<'static, u64>> {
            (0..n)
                .map(|i| Job::new(format!("j{i}"), move || (i as u64).wrapping_mul(2654435761)))
                .collect()
        };
        let seq = JobPool::new(1).run(jobs(40)).unwrap();
        let par = JobPool::new(8).run(jobs(40)).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn jobs_can_borrow_from_caller() {
        let inputs: Vec<u32> = (0..32).collect();
        let pool = JobPool::new(3);
        let jobs: Vec<Job<'_, u32>> = inputs
            .iter()
            .map(|x| Job::new("borrow", move || x + 1))
            .collect();
        let out = pool.run(jobs).unwrap();
        assert_eq!(out.iter().sum::<u32>(), inputs.iter().sum::<u32>() + 32);
    }

    #[test]
    fn panic_reports_context() {
        let pool = JobPool::new(4);
        let jobs: Vec<Job<'_, ()>> = (0..8)
            .map(|i| {
                Job::new(format!("seed={i}"), move || {
                    if i == 5 {
                        panic!("boom at {i}");
                    }
                })
            })
            .collect();
        let err = pool.run(jobs).unwrap_err();
        assert!(!err.is_empty());
        let p = err.iter().find(|p| p.index == 5).expect("job 5 captured");
        assert_eq!(p.context, "seed=5");
        assert!(p.message.contains("boom at 5"));
        assert!(p.to_string().contains("seed=5"));
    }

    #[test]
    fn sequential_panic_reports_context() {
        let pool = JobPool::new(1);
        let jobs: Vec<Job<'_, ()>> = vec![
            Job::new("ok", || ()),
            Job::new("bad seed=7", || panic!("kaput")),
        ];
        let err = pool.run(jobs).unwrap_err();
        assert_eq!(err.len(), 1);
        assert_eq!(err[0].index, 1);
        assert_eq!(err[0].context, "bad seed=7");
        assert_eq!(err[0].message, "kaput");
    }

    #[test]
    fn empty_job_list_is_ok() {
        let pool = JobPool::with_default_size();
        assert!(pool.workers() >= 1);
        let out: Vec<u8> = pool.run(Vec::new()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let pool = JobPool::new(16);
        let out = pool.run(vec![Job::new("a", || 1), Job::new("b", || 2)]).unwrap();
        assert_eq!(out, vec![1, 2]);
    }
}
