//! Named-metric registry.
//!
//! A [`MetricsRegistry`] is the single place a simulation reports its
//! accounting: monotone **counters** (checkpoints, messages, bytes),
//! last-value **gauges** (queue depths, channel occupancy) and log-scale
//! **histograms** (latencies, dispatch times). Components register a metric
//! once by static name and keep the returned typed handle; the hot-path
//! update through a handle is an array index — and on a *disabled* registry
//! registration returns a sentinel handle whose updates are a branch and a
//! return, so instrumentation can stay compiled in unconditionally.
//!
//! A registry can be frozen into a [`MetricsSnapshot`] — a plain, sorted,
//! serializable view used by reports, artifacts and the CLI's table views.

use crate::json::Json;
use crate::stats::LogHistogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

const DISABLED: usize = usize::MAX;

/// Registry of named counters, gauges and log-scale histograms.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, LogHistogram)>,
}

impl MetricsRegistry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            enabled: true,
            ..Default::default()
        }
    }

    /// A disabled registry: registration hands out sentinel handles and all
    /// updates are near-zero-cost no-ops.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or re-fetches) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if !self.enabled {
            return CounterId(DISABLED);
        }
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if id.0 == DISABLED {
            return;
        }
        self.counters[id.0].1 += n;
    }

    /// Adds one to a counter.
    #[inline]
    pub fn incr(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Current value of a counter (0 on a disabled registry).
    pub fn counter_value(&self, id: CounterId) -> u64 {
        if id.0 == DISABLED {
            0
        } else {
            self.counters[id.0].1
        }
    }

    /// Registers (or re-fetches) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if !self.enabled {
            return GaugeId(DISABLED);
        }
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Sets a gauge to `value`.
    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        if id.0 == DISABLED {
            return;
        }
        self.gauges[id.0].1 = value;
    }

    /// Sets a gauge to `value` if it exceeds the current reading (high-water
    /// mark tracking).
    #[inline]
    pub fn set_max(&mut self, id: GaugeId, value: f64) {
        if id.0 == DISABLED {
            return;
        }
        let g = &mut self.gauges[id.0].1;
        if value > *g {
            *g = value;
        }
    }

    /// Current value of a gauge (0 on a disabled registry).
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        if id.0 == DISABLED {
            0.0
        } else {
            self.gauges[id.0].1
        }
    }

    /// Registers (or re-fetches) a log-scale histogram by name.
    pub fn histogram(&mut self, name: &str, first_edge: f64, growth: f64, bins: usize) -> HistogramId {
        if !self.enabled {
            return HistogramId(DISABLED);
        }
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms
            .push((name.to_string(), LogHistogram::new(first_edge, growth, bins)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        if id.0 == DISABLED {
            return;
        }
        self.histograms[id.0].1.record(x);
    }

    /// Freezes the current state into a sorted, serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = self.counters.clone();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges = self.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<HistogramSnapshot> = self
            .histograms
            .iter()
            .map(|(name, h)| HistogramSnapshot {
                name: name.clone(),
                count: h.count(),
                p50: h.quantile(0.5),
                p99: h.quantile(0.99),
                bins: h.iter().filter(|(_, c)| *c > 0).collect(),
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One histogram frozen for reporting: quantiles plus non-empty bins.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Approximate median (a bin upper edge).
    pub p50: f64,
    /// Approximate 99th percentile (a bin upper edge).
    pub p99: f64,
    /// `(upper_edge, count)` for bins with at least one observation.
    pub bins: Vec<(f64, u64)>,
}

/// An immutable, name-sorted view of a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Counters whose name starts with `prefix`, in name order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .iter()
            .filter(move |(n, _)| n.starts_with(prefix))
            .map(|(n, v)| (n.as_str(), *v))
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serializes the snapshot.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "counters".into(),
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::uint(*v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                Json::Obj(
                    self.gauges
                        .iter()
                        .map(|(n, v)| (n.clone(), Json::Num(*v)))
                        .collect(),
                ),
            ),
            (
                "histograms".into(),
                Json::Arr(
                    self.histograms
                        .iter()
                        .map(|h| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(&h.name)),
                                ("count".into(), Json::uint(h.count)),
                                ("p50".into(), Json::Num(h.p50)),
                                ("p99".into(), Json::Num(h.p99)),
                                (
                                    "bins".into(),
                                    Json::Arr(
                                        h.bins
                                            .iter()
                                            .map(|(edge, c)| {
                                                Json::Arr(vec![
                                                    Json::Num(*edge),
                                                    Json::uint(*c),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the snapshot in the Prometheus text exposition format.
    ///
    /// Counters become `counter` families, gauges `gauge` families, and each
    /// histogram contributes a `_count` plus quantile gauges (`quantile`
    /// label, matching summary conventions). Metric names are sanitized to
    /// the Prometheus charset: every character outside `[a-zA-Z0-9_:]` maps
    /// to `_` (so `ckpt.total` exports as `ckpt_total`). This is the
    /// telemetry surface a future `mck serve` endpoint would expose.
    pub fn to_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| if c.is_ascii_alphanumeric() || c == ':' { c } else { '_' })
                .collect()
        }
        let mut out = String::new();
        for (name, v) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for h in &self.histograms {
            let n = sanitize(&h.name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            out.push_str(&format!("{n}{{quantile=\"0.5\"}} {}\n", h.p50));
            out.push_str(&format!("{n}{{quantile=\"0.99\"}} {}\n", h.p99));
            out.push_str(&format!("{n}_count {}\n", h.count));
        }
        out
    }

    /// Rebuilds a snapshot from its [`MetricsSnapshot::to_json`] form.
    pub fn from_json(v: &Json) -> Option<MetricsSnapshot> {
        let counters = v
            .get("counters")?
            .as_obj()?
            .iter()
            .map(|(n, val)| Some((n.clone(), val.as_u64()?)))
            .collect::<Option<Vec<_>>>()?;
        let gauges = v
            .get("gauges")?
            .as_obj()?
            .iter()
            .map(|(n, val)| Some((n.clone(), val.as_f64()?)))
            .collect::<Option<Vec<_>>>()?;
        let histograms = v
            .get("histograms")?
            .as_arr()?
            .iter()
            .map(|h| {
                Some(HistogramSnapshot {
                    name: h.get("name")?.as_str()?.to_string(),
                    count: h.get("count")?.as_u64()?,
                    p50: h.get("p50")?.as_f64()?,
                    p99: h.get("p99")?.as_f64()?,
                    bins: h
                        .get("bins")?
                        .as_arr()?
                        .iter()
                        .map(|b| {
                            let pair = b.as_arr()?;
                            Some((pair.first()?.as_f64()?, pair.get(1)?.as_u64()?))
                        })
                        .collect::<Option<Vec<_>>>()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(MetricsSnapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_arithmetic() {
        let mut r = MetricsRegistry::new();
        let a = r.counter("ckpt.total");
        let b = r.counter("msgs.sent");
        r.incr(a);
        r.add(a, 4);
        r.incr(b);
        assert_eq!(r.counter_value(a), 5);
        assert_eq!(r.counter_value(b), 1);
        // Re-registration returns the same handle and value.
        let a2 = r.counter("ckpt.total");
        assert_eq!(a, a2);
        assert_eq!(r.counter_value(a2), 5);
    }

    #[test]
    fn gauge_set_and_max() {
        let mut r = MetricsRegistry::new();
        let g = r.gauge("queue.depth");
        r.set(g, 3.0);
        assert_eq!(r.gauge_value(g), 3.0);
        r.set_max(g, 2.0);
        assert_eq!(r.gauge_value(g), 3.0);
        r.set_max(g, 7.5);
        assert_eq!(r.gauge_value(g), 7.5);
    }

    #[test]
    fn histogram_bucketing() {
        let mut r = MetricsRegistry::new();
        let h = r.histogram("lat", 1.0, 2.0, 8);
        for x in [0.5, 1.5, 3.0, 3.5, 100.0] {
            r.observe(h, x);
        }
        let snap = r.snapshot();
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.p50, 4.0);
        let total: u64 = hs.bins.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn disabled_registry_is_noop() {
        let mut r = MetricsRegistry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("x");
        let g = r.gauge("y");
        let h = r.histogram("z", 1.0, 2.0, 4);
        r.incr(c);
        r.set(g, 9.0);
        r.set_max(g, 10.0);
        r.observe(h, 1.0);
        assert_eq!(r.counter_value(c), 0);
        assert_eq!(r.gauge_value(g), 0.0);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let mut r = MetricsRegistry::new();
        let z = r.counter("zz");
        let a = r.counter("aa");
        r.add(z, 2);
        r.incr(a);
        let g = r.gauge("gg");
        r.set(g, 1.25);
        let snap = r.snapshot();
        assert_eq!(snap.counters[0].0, "aa");
        assert_eq!(snap.counters[1].0, "zz");
        assert_eq!(snap.counter("zz"), Some(2));
        assert_eq!(snap.counter("nope"), None);
        assert_eq!(snap.gauge("gg"), Some(1.25));
        assert!(!snap.is_empty());
    }

    #[test]
    fn prefix_queries() {
        let mut r = MetricsRegistry::new();
        for (name, n) in [("mh.0.ckpts", 3), ("mh.1.ckpts", 5), ("net.bytes", 7)] {
            let c = r.counter(name);
            r.add(c, n);
        }
        let snap = r.snapshot();
        let per_mh: Vec<_> = snap.counters_with_prefix("mh.").collect();
        assert_eq!(per_mh, vec![("mh.0.ckpts", 3), ("mh.1.ckpts", 5)]);
    }

    #[test]
    fn prometheus_exposition_sanitizes_and_types() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("ckpt.total");
        r.add(c, 12);
        let g = r.gauge("mailbox.max_depth");
        r.set(g, 3.0);
        let h = r.histogram("dispatch.ns", 16.0, 2.0, 8);
        r.observe(h, 40.0);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE ckpt_total counter\nckpt_total 12\n"));
        assert!(text.contains("# TYPE mailbox_max_depth gauge\nmailbox_max_depth 3\n"));
        assert!(text.contains("# TYPE dispatch_ns summary\n"));
        assert!(text.contains("dispatch_ns{quantile=\"0.5\"} 64\n"));
        assert!(text.contains("dispatch_ns_count 1\n"));
        // No unsanitized dots survive in metric names.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let name = line.split([' ', '{']).next().unwrap();
            assert!(!name.contains('.'), "unsanitized name: {name}");
        }
    }

    #[test]
    fn snapshot_json_round_trip() {
        let mut r = MetricsRegistry::new();
        let c = r.counter("n_tot");
        r.add(c, 42);
        let g = r.gauge("occupancy");
        r.set(g, 0.75);
        let h = r.histogram("lat", 1.0, 2.0, 6);
        r.observe(h, 2.5);
        r.observe(h, 40.0);
        let snap = r.snapshot();
        let back = MetricsSnapshot::from_json(&crate::json::parse(&snap.to_json().to_compact()).unwrap())
            .unwrap();
        assert_eq!(back, snap);
    }
}
