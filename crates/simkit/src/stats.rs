//! Output statistics.
//!
//! The paper reports point estimates over several independent replications
//! ("we did several simulation runs with different seeds and the results were
//! within 4% of each other"). This module provides the collectors used both
//! inside a run (counters, tallies, time-weighted averages, histograms) and
//! across runs (replication summaries with Student-t confidence intervals).

use crate::time::SimTime;

/// Monotone event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Streaming sample statistics (Welford's online algorithm).
///
/// Numerically stable mean/variance without storing samples; used for
/// latencies, queue lengths at sampling points, and per-replication outputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// An empty tally.
    pub fn new() -> Self {
        Tally {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "tally observation must be finite, got {x}");
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another tally into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Tally) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += delta * n2 / n;
        self.m2 += other.m2 + delta * delta * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance, or 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Half-width of the 95% confidence interval on the mean.
    ///
    /// Uses a two-sided Student-t critical value; returns 0 with fewer than
    /// two observations.
    pub fn ci95_half_width(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let t = t_critical_95(self.n - 1);
        t * self.std_dev() / (self.n as f64).sqrt()
    }
}

/// Two-sided 95% Student-t critical values by degrees of freedom.
///
/// Exact table through 30 d.o.f., then the normal-approximation limit. This
/// is the standard fixed-replication CI recipe for terminating simulations.
pub fn t_critical_95(dof: u64) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    match dof {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[(d - 1) as usize],
        d if d <= 60 => 2.000,
        d if d <= 120 => 1.980,
        _ => 1.960,
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. queue length,
/// number of connected hosts).
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    last_time: SimTime,
    last_value: f64,
    area: f64,
    start: SimTime,
    max: f64,
}

impl TimeWeighted {
    /// Starts tracking a signal with `initial` value at time `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeighted {
            last_time: start,
            last_value: initial,
            area: 0.0,
            start,
            max: initial,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    /// Panics if `now` precedes the previous update.
    pub fn update(&mut self, now: SimTime, value: f64) {
        let dt = now.since(self.last_time);
        self.area += self.last_value * dt;
        self.last_time = now;
        self.last_value = value;
        self.max = self.max.max(value);
    }

    /// Current value of the signal.
    pub fn value(&self) -> f64 {
        self.last_value
    }

    /// Largest value seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Time-weighted mean over `[start, now]`.
    pub fn mean_at(&self, now: SimTime) -> f64 {
        let total = now.since(self.start);
        if total == 0.0 {
            return self.last_value;
        }
        let area = self.area + self.last_value * now.since(self.last_time);
        area / total
    }
}

/// Fixed-bin histogram with geometrically growing bin edges.
///
/// Suited to long-tailed simulation outputs (message latencies, rollback
/// distances) where a log-scale summary is more informative than a mean.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    /// First bin upper edge.
    first_edge: f64,
    /// Multiplicative bin growth factor (> 1).
    growth: f64,
    bins: Vec<u64>,
    underflow: u64,
    count: u64,
}

impl LogHistogram {
    /// Creates a histogram with `bins` geometric bins starting at
    /// `first_edge` and growing by `growth` per bin.
    pub fn new(first_edge: f64, growth: f64, bins: usize) -> Self {
        assert!(first_edge > 0.0 && growth > 1.0 && bins > 0);
        LogHistogram {
            first_edge,
            growth,
            bins: vec![0; bins],
            underflow: 0,
            count: 0,
        }
    }

    /// Records one observation (negatives count as underflow).
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.first_edge {
            self.underflow += 1;
            return;
        }
        let idx = ((x / self.first_edge).ln() / self.growth.ln()).floor() as usize + 1;
        let idx = idx.min(self.bins.len() - 1);
        self.bins[idx] += 1;
    }

    /// Merges another histogram into this one bin-wise.
    ///
    /// Both histograms must share the same shape (`first_edge`, `growth`,
    /// bin count) — merging differently binned histograms would silently
    /// misattribute counts, so it panics instead. Used by the parallel
    /// runner to fold per-worker dispatch-latency histograms into one.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            self.first_edge == other.first_edge
                && self.growth == other.growth
                && self.bins.len() == other.bins.len(),
            "cannot merge histograms with different bin shapes"
        );
        for (b, o) in self.bins.iter_mut().zip(&other.bins) {
            *b += o;
        }
        self.underflow += other.underflow;
        self.count += other.count;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Iterator of `(upper_edge, count)` pairs, underflow bin first.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let first = std::iter::once((self.first_edge, self.underflow + self.bins[0]));
        let rest = self.bins.iter().enumerate().skip(1).map(move |(i, &c)| {
            (self.first_edge * self.growth.powi(i as i32), c)
        });
        first.chain(rest)
    }

    /// Approximate quantile (returns a bin upper edge).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0.0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut cum = 0;
        for (edge, c) in self.iter() {
            cum += c;
            if cum >= target {
                return edge;
            }
        }
        self.first_edge * self.growth.powi(self.bins.len() as i32 - 1)
    }
}

/// Batch-means estimator with warm-up deletion, for steady-state outputs
/// observed *within* one long run (as opposed to the terminating-run
/// replications summarized by [`Estimate`]).
///
/// The first `warmup` observations are discarded (initialization bias),
/// then consecutive observations are grouped into batches of `batch_size`;
/// the batch means are treated as (approximately) independent samples, the
/// standard single-run output-analysis recipe. [`BatchMeans::lag1`] offers
/// a diagnostic: near-zero lag-1 autocorrelation of the batch means
/// suggests the batch size is large enough.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    warmup_remaining: u64,
    batch_size: u64,
    current_sum: f64,
    current_n: u64,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Creates an estimator discarding `warmup` observations and batching
    /// by `batch_size`.
    pub fn new(warmup: u64, batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            warmup_remaining: warmup,
            batch_size,
            current_sum: 0.0,
            current_n: 0,
            batch_means: Vec::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        assert!(x.is_finite(), "observation must be finite");
        if self.warmup_remaining > 0 {
            self.warmup_remaining -= 1;
            return;
        }
        self.current_sum += x;
        self.current_n += 1;
        if self.current_n == self.batch_size {
            self.batch_means.push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_n = 0;
        }
    }

    /// Completed batches so far.
    pub fn n_batches(&self) -> usize {
        self.batch_means.len()
    }

    /// The batch means collected so far.
    pub fn batch_means(&self) -> &[f64] {
        &self.batch_means
    }

    /// Point estimate with CI over the batch means.
    pub fn estimate(&self) -> Estimate {
        Estimate::from_samples(&self.batch_means)
    }

    /// Lag-1 autocorrelation of the batch means (`None` with fewer than
    /// three batches or zero variance).
    pub fn lag1(&self) -> Option<f64> {
        let n = self.batch_means.len();
        if n < 3 {
            return None;
        }
        let mean = self.batch_means.iter().sum::<f64>() / n as f64;
        let var: f64 = self
            .batch_means
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum();
        if var == 0.0 {
            return None;
        }
        let cov: f64 = self
            .batch_means
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        Some(cov / var)
    }
}

/// Point estimate with a 95% confidence interval over replications.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Mean over replications.
    pub mean: f64,
    /// Half-width of the 95% CI.
    pub ci95: f64,
    /// Number of replications.
    pub n: u64,
}

impl Estimate {
    /// Summarizes a slice of per-replication outputs.
    pub fn from_samples(samples: &[f64]) -> Estimate {
        let mut t = Tally::new();
        for &s in samples {
            t.record(s);
        }
        Estimate::from_tally(&t)
    }

    /// Summarizes an already-accumulated [`Tally`]. Numerically identical
    /// to [`Estimate::from_samples`] over the same observations; lets
    /// callers fold several metrics in one pass instead of materializing a
    /// sample `Vec` per metric.
    pub fn from_tally(t: &Tally) -> Estimate {
        Estimate {
            mean: t.mean(),
            ci95: t.ci95_half_width(),
            n: t.count(),
        }
    }

    /// Relative CI half-width (`ci95 / mean`), or 0 for a zero mean.
    pub fn relative_ci(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95 / self.mean.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.incr();
        c.add(3);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn tally_mean_and_variance() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(9.0));
        assert_eq!(t.count(), 8);
        assert!((t.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn tally_empty_is_benign() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
        assert_eq!(t.min(), None);
        assert_eq!(t.max(), None);
        assert_eq!(t.ci95_half_width(), 0.0);
    }

    #[test]
    fn tally_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn tally_merge_with_empty() {
        let mut a = Tally::new();
        a.record(1.0);
        let b = Tally::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2.mean(), 1.0);
        let mut e = Tally::new();
        e.merge(&a);
        assert_eq!(e.mean(), 1.0);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn t_table_spot_checks() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(10) - 2.228).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.960).abs() < 1e-9);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let mut small = Tally::new();
        let mut large = Tally::new();
        let mut rng = crate::rng::SimRng::new(5);
        for i in 0..1000 {
            let x = rng.uniform();
            if i < 10 {
                small.record(x);
            }
            large.record(x);
        }
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    #[test]
    fn time_weighted_mean() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::new(1.0), 10.0); // 0 over [0,1]
        tw.update(SimTime::new(3.0), 0.0); // 10 over [1,3]
        // area = 0*1 + 10*2 = 20 over 4 units, plus 0 over [3,4].
        assert!((tw.mean_at(SimTime::new(4.0)) - 5.0).abs() < 1e-12);
        assert_eq!(tw.max(), 10.0);
        assert_eq!(tw.value(), 0.0);
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(SimTime::new(2.0), 7.0);
        assert_eq!(tw.mean_at(SimTime::new(2.0)), 7.0);
    }

    #[test]
    fn histogram_bins_and_quantiles() {
        let mut h = LogHistogram::new(1.0, 2.0, 8);
        for x in [0.5, 1.5, 3.0, 3.5, 100.0] {
            h.record(x);
        }
        assert_eq!(h.count(), 5);
        // Median of 5 samples is the third: 3.0 → bin with edge 4.0.
        assert_eq!(h.quantile(0.5), 4.0);
        // Everything is below the max edge.
        assert!(h.quantile(1.0) <= 128.0);
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn histogram_overflow_clamps_to_last_bin() {
        let mut h = LogHistogram::new(1.0, 2.0, 3);
        h.record(1e9);
        let bins: Vec<_> = h.iter().collect();
        assert_eq!(bins.last().unwrap().1, 1);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let h = LogHistogram::new(16.0, 2.0, 32);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.0), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.quantile(1.0), 0.0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let mut h = LogHistogram::new(1.0, 2.0, 8);
        h.record(3.0);
        // One sample lands in the (2, 4] bin; every quantile reports its
        // upper edge, p50 and p99 included.
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 4.0, "q={q}");
        }
        // A single underflow sample reports the first edge instead.
        let mut u = LogHistogram::new(16.0, 2.0, 4);
        u.record(0.5);
        assert_eq!(u.quantile(0.5), 16.0);
        assert_eq!(u.quantile(0.99), 16.0);
    }

    #[test]
    fn saturating_samples_pin_quantiles_to_max_edge() {
        let mut h = LogHistogram::new(1.0, 2.0, 4);
        // Everything overflows into the clamped last bin (edge 8.0): the
        // quantiles must saturate there rather than invent larger edges.
        for _ in 0..100 {
            h.record(1e12);
        }
        assert_eq!(h.quantile(0.5), 8.0);
        assert_eq!(h.quantile(0.99), 8.0);
        assert_eq!(h.quantile(1.0), 8.0);
    }

    #[test]
    fn quantile_zero_returns_first_edge() {
        let mut h = LogHistogram::new(1.0, 2.0, 8);
        h.record(1.5);
        h.record(100.0);
        // q=0 asks for "at least 0 samples", which the very first bin
        // satisfies even when empty: the histogram's floor is its first edge.
        assert_eq!(h.quantile(0.0), 1.0);
    }

    #[test]
    fn estimate_from_samples() {
        let e = Estimate::from_samples(&[10.0, 12.0, 11.0, 9.0, 13.0]);
        assert_eq!(e.n, 5);
        assert!((e.mean - 11.0).abs() < 1e-12);
        assert!(e.ci95 > 0.0);
        assert!(e.relative_ci() > 0.0);
    }

    #[test]
    fn estimate_zero_mean_relative_ci() {
        let e = Estimate::from_samples(&[0.0, 0.0]);
        assert_eq!(e.relative_ci(), 0.0);
    }

    #[test]
    fn estimate_from_tally_matches_from_samples() {
        let samples = [10.0, 12.0, 11.0, 9.0, 13.0];
        let mut t = Tally::new();
        for &s in &samples {
            t.record(s);
        }
        assert_eq!(Estimate::from_tally(&t), Estimate::from_samples(&samples));
    }

    #[test]
    fn batch_means_discards_warmup() {
        let mut bm = BatchMeans::new(5, 2);
        // 5 biased observations, then 4 steady ones.
        for _ in 0..5 {
            bm.record(1000.0);
        }
        for x in [1.0, 3.0, 5.0, 7.0] {
            bm.record(x);
        }
        assert_eq!(bm.n_batches(), 2);
        assert_eq!(bm.batch_means(), &[2.0, 6.0]);
        let e = bm.estimate();
        assert!((e.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    fn batch_means_ignores_incomplete_batch() {
        let mut bm = BatchMeans::new(0, 3);
        for x in [1.0, 2.0, 3.0, 100.0] {
            bm.record(x);
        }
        assert_eq!(bm.n_batches(), 1);
        assert_eq!(bm.batch_means(), &[2.0]);
    }

    #[test]
    fn lag1_detects_correlation_structure() {
        // Alternating batches → strongly negative lag-1 autocorrelation.
        let mut bm = BatchMeans::new(0, 1);
        for i in 0..40 {
            bm.record(if i % 2 == 0 { 1.0 } else { -1.0 });
        }
        let rho = bm.lag1().unwrap();
        assert!(rho < -0.8, "alternating series should anticorrelate: {rho}");
        // IID-ish uniform noise → small |lag-1|.
        let mut rng = crate::rng::SimRng::new(3);
        let mut iid = BatchMeans::new(0, 1);
        for _ in 0..2000 {
            iid.record(rng.uniform());
        }
        assert!(iid.lag1().unwrap().abs() < 0.1);
    }

    #[test]
    fn lag1_needs_enough_batches() {
        let mut bm = BatchMeans::new(0, 1);
        bm.record(1.0);
        bm.record(2.0);
        assert_eq!(bm.lag1(), None);
        // Zero variance → None as well.
        let mut flat = BatchMeans::new(0, 1);
        for _ in 0..10 {
            flat.record(4.0);
        }
        assert_eq!(flat.lag1(), None);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        BatchMeans::new(0, 0);
    }
}
