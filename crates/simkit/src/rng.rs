//! Seedable random-number substrate.
//!
//! Every stochastic decision in a simulation run flows through a [`SimRng`],
//! which wraps a fast non-cryptographic generator seeded from a single `u64`.
//! Runs are therefore exactly reproducible: same seed, same trajectory.
//!
//! Independent *substreams* can be split off with [`SimRng::fork`], so that,
//! e.g., each mobile host's mobility process consumes its own stream and
//! adding a host does not perturb the others' draws. Substream seeds are
//! derived with a SplitMix64 mix of `(seed, stream-id)`, the standard way to
//! decorrelate lanes from one master seed.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna), and the
//! distributions needed by the paper's model are implemented directly
//! (inverse-transform exponential, Bernoulli, discrete uniform), so this
//! module has **zero** external dependencies.

/// SplitMix64 finalizer; decorrelates derived seeds.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core: 256 bits of state, never all-zero.
///
/// Reference implementation: <https://prng.di.unimi.it/xoshiro256plusplus.c>.
#[derive(Debug, Clone)]
struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the full state with a SplitMix64 stream,
    /// the seeding procedure recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // SplitMix64 cannot emit four consecutive zeros, but keep the
        // invariant explicit: an all-zero state is a fixed point.
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256PlusPlus { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// Deterministic simulation RNG with substream support.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256PlusPlus,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256PlusPlus::seed_from_u64(splitmix64(seed)),
            seed,
        }
    }

    /// The master seed this generator (or its parent) was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The generator's full internal state as five words: the four
    /// xoshiro256++ state words plus the seed.
    ///
    /// Two `SimRng`s with equal state words produce identical future draw
    /// sequences, so this is exactly what a state fingerprint must capture
    /// — the model checker folds these words into its state hash so that
    /// explored states that differ only in *future* randomness are never
    /// wrongly merged.
    pub fn state_words(&self) -> [u64; 5] {
        let s = &self.inner.s;
        [s[0], s[1], s[2], s[3], self.seed]
    }

    /// Splits off an independent substream identified by `stream`.
    ///
    /// Forking is a pure function of `(master seed, stream)`: it does not
    /// consume randomness from `self`, so the order in which substreams are
    /// created cannot change their contents.
    pub fn fork(&self, stream: u64) -> SimRng {
        let derived = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(1)));
        SimRng {
            inner: Xoshiro256PlusPlus::seed_from_u64(derived),
            seed: derived,
        }
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1) with full mantissa.
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`; panics if the range is empty or not finite.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        lo + (hi - lo) * self.uniform()
    }

    /// Exponential draw with the given `mean` (inverse-transform sampling).
    ///
    /// # Panics
    /// Panics unless `mean` is finite and strictly positive.
    #[inline]
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        // 1 - u is in (0, 1], so ln() is finite and the result non-negative.
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        // Handle the endpoints exactly so p=1.0 never fails and p=0.0 never
        // succeeds regardless of float rounding.
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        self.uniform() < p
    }

    /// Uniform index in `[0, n)`; panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot draw an index from an empty range");
        self.bounded(n as u64) as usize
    }

    /// Unbiased draw in `[0, n)` by rejection sampling on the top of the
    /// 64-bit range (the classic "modulo with rejection zone" scheme).
    #[inline]
    fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Largest multiple of n that fits in u64; draws at or above it would
        // bias the low residues, so reject and redraw (expected < 2 draws).
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let x = self.inner.next_u64();
            if x < zone {
                return x % n;
            }
        }
    }

    /// Uniform index in `[0, n)` excluding `not`; panics if `n < 2`.
    ///
    /// This is the paper's "destination of each message is a uniformly
    /// distributed random variable" over the *other* hosts.
    #[inline]
    pub fn index_excluding(&mut self, n: usize, not: usize) -> usize {
        assert!(n >= 2, "need at least two elements to exclude one");
        assert!(not < n, "excluded index {not} out of range {n}");
        let raw = self.bounded((n - 1) as u64) as usize;
        if raw >= not {
            raw + 1
        } else {
            raw
        }
    }

    /// Uniformly chooses an element of a non-empty slice.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Raw `u64` draw (for deriving ids, shuffling, etc.).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_order_independent() {
        let root = SimRng::new(7);
        let mut a1 = root.fork(10);
        let mut _b = root.fork(20);
        let mut a2 = root.fork(10);
        for _ in 0..50 {
            assert_eq!(a1.next_u64(), a2.next_u64());
        }
    }

    #[test]
    fn fork_streams_are_distinct() {
        let root = SimRng::new(7);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_does_not_consume_parent() {
        let mut a = SimRng::new(3);
        let mut b = SimRng::new(3);
        let _ = a.fork(99);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut rng = SimRng::new(5);
        for _ in 0..100_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = SimRng::new(9);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.uniform()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} too far from 0.5");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(11);
        let n = 200_000;
        let mean = 5.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let sample_mean = sum / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.1,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_non_negative() {
        let mut rng = SimRng::new(13);
        assert!((0..10_000).all(|_| rng.exp(0.001) >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exponential_rejects_zero_mean() {
        SimRng::new(1).exp(0.0);
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = SimRng::new(17);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.4)).count();
        let freq = hits as f64 / n as f64;
        assert!((freq - 0.4).abs() < 0.01, "frequency {freq} too far from 0.4");
    }

    #[test]
    fn bernoulli_endpoints_exact() {
        let mut rng = SimRng::new(19);
        assert!((0..1000).all(|_| rng.bernoulli(1.0)));
        assert!((0..1000).all(|_| !rng.bernoulli(0.0)));
    }

    #[test]
    fn index_excluding_never_returns_excluded() {
        let mut rng = SimRng::new(23);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let i = rng.index_excluding(10, 4);
            assert_ne!(i, 4);
            seen[i] = true;
        }
        // Every non-excluded index is reachable.
        for (i, s) in seen.iter().enumerate() {
            assert_eq!(*s, i != 4, "index {i}");
        }
    }

    #[test]
    fn index_excluding_is_roughly_uniform() {
        let mut rng = SimRng::new(29);
        let n = 90_000;
        let mut counts = [0u32; 10];
        for _ in 0..n {
            counts[rng.index_excluding(10, 0)] += 1;
        }
        let expect = n as f64 / 9.0;
        for (i, &c) in counts.iter().enumerate().skip(1) {
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "index {i}: count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn index_is_roughly_uniform() {
        let mut rng = SimRng::new(43);
        let n = 70_000;
        let mut counts = [0u32; 7];
        for _ in 0..n {
            counts[rng.index(7)] += 1;
        }
        let expect = n as f64 / 7.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expect).abs() < expect * 0.05,
                "index {i}: count {c} vs expected {expect}"
            );
        }
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = SimRng::new(31);
        for _ in 0..10_000 {
            let x = rng.uniform_in(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SimRng::new(37);
        let items = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(*rng.choose(&items));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(41);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }
}
