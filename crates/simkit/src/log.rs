//! Bounded simulation event log.
//!
//! Debugging a discrete-event simulation without a record of what happened
//! is guesswork. [`EventLog`] is a fixed-capacity ring of timestamped,
//! tagged entries: cheap enough to leave compiled in (a disabled log is a
//! no-op), bounded so a multi-million-event run cannot exhaust memory, and
//! filterable by tag for post-mortem inspection in tests.

use std::collections::VecDeque;
use std::fmt;

use crate::time::SimTime;

/// Severity of a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// High-volume tracing.
    Debug,
    /// Notable state transitions.
    Info,
    /// Suspicious but non-fatal conditions.
    Warn,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
        })
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct LogEntry {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Severity.
    pub level: Level,
    /// Static category tag (e.g. `"mobility"`, `"ckpt"`).
    pub tag: &'static str,
    /// Free-form description.
    pub message: String,
}

/// Fixed-capacity ring of [`LogEntry`] values.
#[derive(Debug, Clone)]
pub struct EventLog {
    entries: VecDeque<LogEntry>,
    capacity: usize,
    dropped: u64,
}

impl EventLog {
    /// A log holding at most `capacity` entries (0 disables recording).
    pub fn new(capacity: usize) -> Self {
        EventLog {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// A disabled log: every record call is a cheap no-op.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// True when recording is off.
    pub fn is_disabled(&self) -> bool {
        self.capacity == 0
    }

    /// Records an entry, evicting the oldest when full.
    pub fn record(&mut self, time: SimTime, level: Level, tag: &'static str, message: String) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(LogEntry {
            time,
            level,
            tag,
            message,
        });
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &LogEntry> {
        self.entries.iter()
    }

    /// Retained entries with the given tag.
    pub fn with_tag<'a>(&'a self, tag: &'a str) -> impl Iterator<Item = &'a LogEntry> + 'a {
        self.entries.iter().filter(move |e| e.tag == tag)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders the retained entries as text, one per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "[{:>12.4}] {:<5} {:<10} {}\n",
                e.time.as_f64(),
                e.level,
                e.tag,
                e.message
            ));
        }
        if self.dropped > 0 {
            out.push_str(&format!("... ({} earlier entries dropped)\n", self.dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn records_in_order() {
        let mut log = EventLog::new(10);
        log.record(t(1.0), Level::Info, "a", "first".into());
        log.record(t(2.0), Level::Warn, "b", "second".into());
        let msgs: Vec<_> = log.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["first", "second"]);
        assert_eq!(log.len(), 2);
        assert!(!log.is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut log = EventLog::new(2);
        for i in 0..5 {
            log.record(t(i as f64), Level::Debug, "x", format!("m{i}"));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let msgs: Vec<_> = log.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m3", "m4"]);
    }

    #[test]
    fn disabled_log_is_noop() {
        let mut log = EventLog::disabled();
        assert!(log.is_disabled());
        log.record(t(1.0), Level::Info, "a", "ignored".into());
        assert!(log.is_empty());
        assert_eq!(log.dropped(), 0);
    }

    #[test]
    fn exact_capacity_drops_nothing() {
        // The boundary case: filling the ring to exactly its capacity must
        // not evict — eviction starts only on the (capacity+1)-th record.
        let mut log = EventLog::new(3);
        for i in 0..3 {
            log.record(t(i as f64), Level::Debug, "x", format!("m{i}"));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 0);
        log.record(t(3.0), Level::Debug, "x", "m3".into());
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.entries().next().unwrap().message, "m1");
    }

    #[test]
    fn capacity_zero_never_counts_drops() {
        // A disabled log discards silently: nothing retained, nothing
        // counted as dropped, and dump() stays empty.
        let mut log = EventLog::new(0);
        for i in 0..10 {
            log.record(t(i as f64), Level::Warn, "x", format!("m{i}"));
        }
        assert_eq!(log.len(), 0);
        assert_eq!(log.dropped(), 0);
        assert!(log.dump().is_empty());
    }

    #[test]
    fn tag_filtering() {
        let mut log = EventLog::new(10);
        log.record(t(1.0), Level::Info, "ckpt", "c1".into());
        log.record(t(2.0), Level::Info, "mobility", "m1".into());
        log.record(t(3.0), Level::Info, "ckpt", "c2".into());
        assert_eq!(log.with_tag("ckpt").count(), 2);
        assert_eq!(log.with_tag("mobility").count(), 1);
        assert_eq!(log.with_tag("nope").count(), 0);
    }

    #[test]
    fn dump_mentions_drops() {
        let mut log = EventLog::new(1);
        log.record(t(1.0), Level::Info, "a", "one".into());
        log.record(t(2.0), Level::Info, "a", "two".into());
        let d = log.dump();
        assert!(d.contains("two"));
        assert!(d.contains("1 earlier entries dropped"));
        assert!(d.contains("INFO"));
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert_eq!(format!("{}", Level::Warn), "WARN");
    }
}
