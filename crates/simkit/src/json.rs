//! Minimal JSON value, writer and parser.
//!
//! The observability layer ships machine-readable artifacts (metric
//! snapshots, run manifests, JSONL trace streams) without pulling in serde:
//! this module hand-rolls the small JSON subset those artifacts need.
//!
//! Properties that matter here:
//!
//! * **Deterministic output** — object members keep insertion order and
//!   numbers use Rust's shortest-round-trip `f64` formatting (integers are
//!   written without a fractional part), so identical data serializes to
//!   identical bytes;
//! * **Round-trip** — `parse(&v.to_string()) == v` for every value this
//!   module can produce;
//! * **Small** — no comments, no trailing commas, UTF-8 only; exactly the
//!   JSON grammar.

use std::fmt;

/// A JSON value. Objects preserve member insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered members.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience number constructor (also accepts integer types).
    pub fn num(x: impl Into<f64>) -> Json {
        Json::Num(x.into())
    }

    /// A `u64` preserved exactly when possible (above 2^53 precision is
    /// capped by the f64 payload; simulation counters stay far below that).
    pub fn uint(x: u64) -> Json {
        Json::Num(x as f64)
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value's object members, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_value(&mut out, self, Some(2), 0);
        out.push('\n');
        out
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

fn write_value(out: &mut String, v: &Json, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(x) => write_number(out, *x),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
            write_value(out, &items[i], indent, d)
        }),
        Json::Obj(members) => write_seq(out, indent, depth, '{', '}', members.len(), |out, i, d| {
            let (k, val) = &members[i];
            write_string(out, k);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            write_value(out, val, indent, d);
        }),
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', step * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/inf; null is the conventional stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 9.0e15 {
        // Integral values print without a fractional part (and -0.0 as 0).
        out.push_str(&format!("{}", x as i64));
    } else {
        // Rust's default Display for f64 is the shortest round-trip form.
        out.push_str(&format!("{x}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document; the whole input must be one value (surrounding
/// whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("bad code point"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("short \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Num(0.0)),
            ("-17", Json::Num(-17.0)),
            ("3.25", Json::Num(3.25)),
            ("\"hi\"", Json::str("hi")),
        ] {
            assert_eq!(parse(text).unwrap(), v, "{text}");
            assert_eq!(parse(&v.to_compact()).unwrap(), v);
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(5.0).to_compact(), "5");
        assert_eq!(Json::Num(-0.0).to_compact(), "0");
        assert_eq!(Json::Num(0.5).to_compact(), "0.5");
        assert_eq!(Json::uint(123456789).to_compact(), "123456789");
    }

    #[test]
    fn non_finite_become_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("run")),
            ("n".into(), Json::Num(3.0)),
            (
                "xs".into(),
                Json::Arr(vec![Json::Num(1.5), Json::Null, Json::Bool(false)]),
            ),
            ("nested".into(), Json::Obj(vec![("k".into(), Json::str("v"))])),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        assert_eq!(parse(&v.to_compact()).unwrap(), v);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" backslash\\ newline\n tab\t control\u{1} unicode\u{1F600}é";
        let v = Json::str(s);
        let parsed = parse(&v.to_compact()).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn surrogate_pairs_parse() {
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 1, "b": "x", "c": [true], "d": 2.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap()[0].as_bool(), Some(true));
        assert_eq!(v.get("d").unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("d").unwrap().as_u64(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_obj().unwrap().len(), 4);
    }

    #[test]
    fn object_member_order_is_preserved() {
        let text = r#"{"z":1,"a":2,"m":3}"#;
        assert_eq!(parse(text).unwrap().to_compact(), text);
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 123456.789012345, 2.5e20] {
            let s = Json::Num(x).to_compact();
            assert_eq!(parse(&s).unwrap().as_f64(), Some(x), "{s}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "tru", "\"unterminated", "{\"a\" 1}", "[1 2]", "1 2",
            "{\"a\":}", "nul", "\"\\q\"", "--1",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" \n\t{ \"a\" : [ 1 , 2 ] } \r\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
    }
}
