//! Structured run tracing.
//!
//! Where [`crate::log::EventLog`] records free-form debug text, this module
//! carries **typed** events — checkpoints, message lifecycle, mobility,
//! recovery-line updates — each stamped with simulation time and a
//! monotonically increasing sequence number. Events flow through a
//! [`Tracer`] to any number of subscribed [`TraceSink`]s:
//!
//! * [`MemorySink`] — a bounded in-memory ring (the structured counterpart
//!   of `EventLog`, which itself also implements [`TraceSink`] for
//!   human-readable capture);
//! * [`JsonlSink`] — streams one JSON object per line to any writer, the
//!   machine-readable form consumed by `mck inspect` and external tooling.
//!
//! Because events carry only simulation-derived data (no wall clock), a
//! trace stream is a pure function of the configuration and seed: two runs
//! with the same seed produce byte-identical JSONL.

use std::io::Write;

use crate::json::Json;
use crate::log::{EventLog, Level};
use crate::time::SimTime;

/// Why a checkpoint was taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptClass {
    /// Basic checkpoint on a cell switch (hand-off).
    CellSwitch,
    /// Basic checkpoint on a voluntary disconnection.
    Disconnect,
    /// Forced (communication-induced) checkpoint.
    Forced,
    /// Timer-driven periodic checkpoint (uncoordinated baseline).
    Periodic,
    /// Coordinated-session checkpoint (Koo–Toueg / Chandy–Lamport style).
    Coordinated,
}

impl CkptClass {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            CkptClass::CellSwitch => "cell_switch",
            CkptClass::Disconnect => "disconnect",
            CkptClass::Forced => "forced",
            CkptClass::Periodic => "periodic",
            CkptClass::Coordinated => "coordinated",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        Some(match s {
            "cell_switch" => CkptClass::CellSwitch,
            "disconnect" => CkptClass::Disconnect,
            "forced" => CkptClass::Forced,
            "periodic" => CkptClass::Periodic,
            "coordinated" => CkptClass::Coordinated,
            _ => return None,
        })
    }

    /// True for the basic (mobility-driven) classes.
    pub fn is_basic(self) -> bool {
        matches!(self, CkptClass::CellSwitch | CkptClass::Disconnect)
    }
}

/// One typed simulation event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A mobile host took checkpoint number `index`.
    Checkpoint {
        /// Host that checkpointed.
        mh: usize,
        /// Protocol checkpoint index (sequence number).
        index: u64,
        /// Why it was taken.
        class: CkptClass,
        /// True when this checkpoint replaces its predecessor (QBC).
        replaced: bool,
    },
    /// Application message handed to the network.
    Send {
        /// Unique message id.
        msg: u64,
        /// Sender host.
        from: usize,
        /// Destination host.
        to: usize,
        /// Payload plus piggyback size.
        bytes: u64,
    },
    /// Application message delivered to its destination.
    Deliver {
        /// Unique message id.
        msg: u64,
        /// Sender host.
        from: usize,
        /// Destination host.
        to: usize,
    },
    /// A duplicate delivery was suppressed.
    Dedup {
        /// Unique message id.
        msg: u64,
        /// Destination host.
        to: usize,
    },
    /// A host switched cells.
    Handoff {
        /// Moving host.
        mh: usize,
        /// Cell left.
        from_cell: usize,
        /// Cell entered.
        to_cell: usize,
    },
    /// A host disconnected from its cell.
    Disconnect {
        /// Disconnecting host.
        mh: usize,
        /// Cell it left.
        cell: usize,
    },
    /// A host reconnected to a cell.
    Reconnect {
        /// Reconnecting host.
        mh: usize,
        /// Cell it joined.
        cell: usize,
    },
    /// The globally consistent recovery line advanced to `index`.
    RecoveryLine {
        /// Smallest checkpoint index reached by all hosts.
        index: u64,
    },
}

impl TraceEvent {
    /// Stable wire/tag name of the event type.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Checkpoint { .. } => "checkpoint",
            TraceEvent::Send { .. } => "send",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::Dedup { .. } => "dedup",
            TraceEvent::Handoff { .. } => "handoff",
            TraceEvent::Disconnect { .. } => "disconnect",
            TraceEvent::Reconnect { .. } => "reconnect",
            TraceEvent::RecoveryLine { .. } => "recovery_line",
        }
    }

    /// Short human rendering (used when mirroring into an [`EventLog`]).
    pub fn describe(&self) -> String {
        match self {
            TraceEvent::Checkpoint {
                mh,
                index,
                class,
                replaced,
            } => format!(
                "MH{mh} ckpt #{index} ({}{})",
                class.name(),
                if *replaced { ", replaces predecessor" } else { "" }
            ),
            TraceEvent::Send { msg, from, to, bytes } => {
                format!("msg {msg}: MH{from} -> MH{to} ({bytes} B)")
            }
            TraceEvent::Deliver { msg, from, to } => {
                format!("msg {msg}: delivered MH{from} -> MH{to}")
            }
            TraceEvent::Dedup { msg, to } => format!("msg {msg}: duplicate dropped at MH{to}"),
            TraceEvent::Handoff { mh, from_cell, to_cell } => {
                format!("MH{mh} hand-off cell {from_cell} -> {to_cell}")
            }
            TraceEvent::Disconnect { mh, cell } => format!("MH{mh} disconnected from cell {cell}"),
            TraceEvent::Reconnect { mh, cell } => format!("MH{mh} reconnected to cell {cell}"),
            TraceEvent::RecoveryLine { index } => format!("recovery line advanced to index {index}"),
        }
    }
}

/// A [`TraceEvent`] stamped with sequence number and simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// 0-based position in the run's event stream.
    pub seq: u64,
    /// Simulation time of the event.
    pub time: SimTime,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Serializes to the JSONL wire form.
    pub fn to_json(&self) -> Json {
        let mut members = vec![
            ("seq".into(), Json::uint(self.seq)),
            ("t".into(), Json::Num(self.time.as_f64())),
            ("ev".into(), Json::str(self.event.kind())),
        ];
        match &self.event {
            TraceEvent::Checkpoint {
                mh,
                index,
                class,
                replaced,
            } => {
                members.push(("mh".into(), Json::uint(*mh as u64)));
                members.push(("index".into(), Json::uint(*index)));
                members.push(("class".into(), Json::str(class.name())));
                members.push(("replaced".into(), Json::Bool(*replaced)));
            }
            TraceEvent::Send { msg, from, to, bytes } => {
                members.push(("msg".into(), Json::uint(*msg)));
                members.push(("from".into(), Json::uint(*from as u64)));
                members.push(("to".into(), Json::uint(*to as u64)));
                members.push(("bytes".into(), Json::uint(*bytes)));
            }
            TraceEvent::Deliver { msg, from, to } => {
                members.push(("msg".into(), Json::uint(*msg)));
                members.push(("from".into(), Json::uint(*from as u64)));
                members.push(("to".into(), Json::uint(*to as u64)));
            }
            TraceEvent::Dedup { msg, to } => {
                members.push(("msg".into(), Json::uint(*msg)));
                members.push(("to".into(), Json::uint(*to as u64)));
            }
            TraceEvent::Handoff { mh, from_cell, to_cell } => {
                members.push(("mh".into(), Json::uint(*mh as u64)));
                members.push(("from_cell".into(), Json::uint(*from_cell as u64)));
                members.push(("to_cell".into(), Json::uint(*to_cell as u64)));
            }
            TraceEvent::Disconnect { mh, cell } | TraceEvent::Reconnect { mh, cell } => {
                members.push(("mh".into(), Json::uint(*mh as u64)));
                members.push(("cell".into(), Json::uint(*cell as u64)));
            }
            TraceEvent::RecoveryLine { index } => {
                members.push(("index".into(), Json::uint(*index)));
            }
        }
        Json::Obj(members)
    }

    /// Parses the JSONL wire form back into a record.
    pub fn from_json(v: &Json) -> Option<TraceRecord> {
        let seq = v.get("seq")?.as_u64()?;
        let time = SimTime::new(v.get("t")?.as_f64()?);
        let usize_of = |key: &str| v.get(key).and_then(Json::as_u64).map(|x| x as usize);
        let event = match v.get("ev")?.as_str()? {
            "checkpoint" => TraceEvent::Checkpoint {
                mh: usize_of("mh")?,
                index: v.get("index")?.as_u64()?,
                class: CkptClass::from_name(v.get("class")?.as_str()?)?,
                replaced: v.get("replaced")?.as_bool()?,
            },
            "send" => TraceEvent::Send {
                msg: v.get("msg")?.as_u64()?,
                from: usize_of("from")?,
                to: usize_of("to")?,
                bytes: v.get("bytes")?.as_u64()?,
            },
            "deliver" => TraceEvent::Deliver {
                msg: v.get("msg")?.as_u64()?,
                from: usize_of("from")?,
                to: usize_of("to")?,
            },
            "dedup" => TraceEvent::Dedup {
                msg: v.get("msg")?.as_u64()?,
                to: usize_of("to")?,
            },
            "handoff" => TraceEvent::Handoff {
                mh: usize_of("mh")?,
                from_cell: usize_of("from_cell")?,
                to_cell: usize_of("to_cell")?,
            },
            "disconnect" => TraceEvent::Disconnect {
                mh: usize_of("mh")?,
                cell: usize_of("cell")?,
            },
            "reconnect" => TraceEvent::Reconnect {
                mh: usize_of("mh")?,
                cell: usize_of("cell")?,
            },
            "recovery_line" => TraceEvent::RecoveryLine {
                index: v.get("index")?.as_u64()?,
            },
            _ => return None,
        };
        Some(TraceRecord { seq, time, event })
    }
}

/// A subscriber to the trace stream.
pub trait TraceSink: Send {
    /// Called once per emitted event, in sequence order.
    fn on_record(&mut self, rec: &TraceRecord);

    /// Called when the run finishes (flush buffers, write trailers).
    fn finish(&mut self) {}
}

/// Bounded in-memory ring of [`TraceRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    records: std::collections::VecDeque<TraceRecord>,
    capacity: usize,
    dropped: u64,
}

impl MemorySink {
    /// A ring retaining at most `capacity` records (0 disables retention).
    pub fn new(capacity: usize) -> Self {
        MemorySink {
            records: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted because the ring was full (or capacity was 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl TraceSink for MemorySink {
    fn on_record(&mut self, rec: &TraceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(rec.clone());
    }
}

/// `EventLog` doubles as a human-readable trace sink: each typed event is
/// mirrored as a `Debug`-level entry tagged with the event kind.
impl TraceSink for EventLog {
    fn on_record(&mut self, rec: &TraceRecord) {
        self.record(rec.time, Level::Debug, rec.event.kind(), rec.event.describe());
    }
}

/// Streams records as JSON Lines to any writer.
pub struct JsonlSink {
    out: std::io::BufWriter<Box<dyn Write + Send>>,
    written: u64,
    io_error: Option<std::io::Error>,
}

impl JsonlSink {
    /// Wraps a writer (file, stdout, `Vec<u8>` buffer, ...).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: std::io::BufWriter::new(out),
            written: 0,
            io_error: None,
        }
    }

    /// Opens (truncates) a file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error hit while writing, if any (writing stops at the
    /// first failure; simulation correctness never depends on the sink).
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.io_error.as_ref()
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("written", &self.written)
            .field("io_error", &self.io_error)
            .finish_non_exhaustive()
    }
}

impl TraceSink for JsonlSink {
    fn on_record(&mut self, rec: &TraceRecord) {
        if self.io_error.is_some() {
            return;
        }
        let line = rec.to_json().to_compact();
        if let Err(e) = self.out.write_all(line.as_bytes()).and_then(|_| self.out.write_all(b"\n"))
        {
            self.io_error = Some(e);
            return;
        }
        self.written += 1;
    }

    fn finish(&mut self) {
        if let Err(e) = self.out.flush() {
            self.io_error.get_or_insert(e);
        }
    }
}

/// Fan-out point of the trace stream.
///
/// A `Tracer` with no sinks is inert: [`Tracer::is_active`] lets call sites
/// skip even constructing event payloads. The two built-in sinks
/// ([`MemorySink`], [`JsonlSink`]) occupy dedicated slots so they can be
/// retrieved after the run; arbitrary additional subscribers attach as boxed
/// [`TraceSink`]s.
#[derive(Default)]
pub struct Tracer {
    seq: u64,
    memory: Option<MemorySink>,
    jsonl: Option<JsonlSink>,
    extra: Vec<Box<dyn TraceSink>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("seq", &self.seq)
            .field("memory", &self.memory)
            .field("jsonl", &self.jsonl)
            .field("extra_sinks", &self.extra.len())
            .finish()
    }
}

impl Tracer {
    /// A tracer with no subscribers (all emits are no-ops).
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Attaches a bounded in-memory ring sink.
    pub fn with_memory(mut self, capacity: usize) -> Self {
        self.memory = Some(MemorySink::new(capacity));
        self
    }

    /// Attaches a JSONL sink.
    pub fn with_jsonl(mut self, sink: JsonlSink) -> Self {
        self.jsonl = Some(sink);
        self
    }

    /// Attaches an arbitrary subscriber.
    pub fn attach(&mut self, sink: Box<dyn TraceSink>) {
        self.extra.push(sink);
    }

    /// True when at least one sink is subscribed.
    pub fn is_active(&self) -> bool {
        self.memory.is_some() || self.jsonl.is_some() || !self.extra.is_empty()
    }

    /// Events emitted so far.
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Stamps and broadcasts one event. No-op when no sink is subscribed.
    pub fn emit(&mut self, time: SimTime, event: TraceEvent) {
        if !self.is_active() {
            return;
        }
        let rec = TraceRecord {
            seq: self.seq,
            time,
            event,
        };
        self.seq += 1;
        if let Some(m) = &mut self.memory {
            m.on_record(&rec);
        }
        if let Some(j) = &mut self.jsonl {
            j.on_record(&rec);
        }
        for s in &mut self.extra {
            s.on_record(&rec);
        }
    }

    /// Flushes every sink and returns the retrievable ones
    /// `(memory, jsonl)`.
    pub fn finish(mut self) -> (Option<MemorySink>, Option<JsonlSink>) {
        if let Some(m) = &mut self.memory {
            TraceSink::finish(m);
        }
        if let Some(j) = &mut self.jsonl {
            TraceSink::finish(j);
        }
        for s in &mut self.extra {
            s.finish();
        }
        (self.memory, self.jsonl)
    }

    /// Read access to the memory sink, if attached.
    pub fn memory(&self) -> Option<&MemorySink> {
        self.memory.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Checkpoint {
                mh: 3,
                index: 7,
                class: CkptClass::Forced,
                replaced: false,
            },
            TraceEvent::Checkpoint {
                mh: 0,
                index: 2,
                class: CkptClass::Disconnect,
                replaced: true,
            },
            TraceEvent::Send {
                msg: 11,
                from: 1,
                to: 2,
                bytes: 1040,
            },
            TraceEvent::Deliver { msg: 11, from: 1, to: 2 },
            TraceEvent::Dedup { msg: 11, to: 2 },
            TraceEvent::Handoff {
                mh: 4,
                from_cell: 0,
                to_cell: 3,
            },
            TraceEvent::Disconnect { mh: 5, cell: 2 },
            TraceEvent::Reconnect { mh: 5, cell: 1 },
            TraceEvent::RecoveryLine { index: 9 },
        ]
    }

    #[test]
    fn records_round_trip_through_json() {
        for (i, event) in sample_events().into_iter().enumerate() {
            let rec = TraceRecord {
                seq: i as u64,
                time: t(1.5 * i as f64),
                event,
            };
            let json = crate::json::parse(&rec.to_json().to_compact()).unwrap();
            assert_eq!(TraceRecord::from_json(&json), Some(rec));
        }
    }

    #[test]
    fn inactive_tracer_is_noop() {
        let mut tr = Tracer::disabled();
        assert!(!tr.is_active());
        tr.emit(t(1.0), TraceEvent::RecoveryLine { index: 1 });
        assert_eq!(tr.emitted(), 0);
    }

    #[test]
    fn memory_sink_bounds_and_counts_drops() {
        let mut tr = Tracer::disabled().with_memory(2);
        assert!(tr.is_active());
        for i in 0..5 {
            tr.emit(t(i as f64), TraceEvent::RecoveryLine { index: i });
        }
        let (mem, _) = tr.finish();
        let mem = mem.unwrap();
        assert_eq!(mem.len(), 2);
        assert_eq!(mem.dropped(), 3);
        let seqs: Vec<u64> = mem.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn memory_sink_capacity_zero_drops_everything() {
        let mut sink = MemorySink::new(0);
        sink.on_record(&TraceRecord {
            seq: 0,
            time: t(0.0),
            event: TraceEvent::RecoveryLine { index: 0 },
        });
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("simkit_trace_test.jsonl");
        let mut tr = Tracer::disabled().with_jsonl(JsonlSink::create(&path).unwrap());
        let events = sample_events();
        for (i, e) in events.iter().enumerate() {
            tr.emit(t(i as f64), e.clone());
        }
        let (_, jsonl) = tr.finish();
        assert_eq!(jsonl.unwrap().written(), events.len() as u64);
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed: Vec<TraceRecord> = text
            .lines()
            .map(|l| TraceRecord::from_json(&crate::json::parse(l).unwrap()).unwrap())
            .collect();
        assert_eq!(parsed.len(), events.len());
        for (i, rec) in parsed.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(&rec.event, &events[i]);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn event_log_acts_as_sink() {
        let mut log = EventLog::new(16);
        let rec = TraceRecord {
            seq: 0,
            time: t(2.5),
            event: TraceEvent::Handoff {
                mh: 1,
                from_cell: 0,
                to_cell: 2,
            },
        };
        log.on_record(&rec);
        let entry = log.entries().next().unwrap();
        assert_eq!(entry.tag, "handoff");
        assert!(entry.message.contains("MH1"));
        assert_eq!(entry.time, t(2.5));
    }

    #[test]
    fn custom_sinks_receive_events() {
        struct CountSink(std::sync::Arc<std::sync::atomic::AtomicU64>);
        impl TraceSink for CountSink {
            fn on_record(&mut self, _rec: &TraceRecord) {
                self.0.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
        }
        let n = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut tr = Tracer::disabled();
        tr.attach(Box::new(CountSink(n.clone())));
        tr.emit(t(0.0), TraceEvent::RecoveryLine { index: 0 });
        tr.emit(t(1.0), TraceEvent::RecoveryLine { index: 1 });
        tr.finish();
        assert_eq!(n.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn sequence_numbers_are_contiguous() {
        let mut tr = Tracer::disabled().with_memory(100);
        for i in 0..10 {
            tr.emit(t(i as f64), TraceEvent::RecoveryLine { index: i });
        }
        let (mem, _) = tr.finish();
        let seqs: Vec<u64> = mem.unwrap().records().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }
}
