//! Calendar queue — an O(1) amortized pending-event set.
//!
//! The default [`crate::event::Scheduler`] uses a binary heap
//! (O(log n) per operation, excellent constants). The classic alternative
//! for discrete-event simulation is R. Brown's *calendar queue* (CACM
//! 1988): a circular array of time-sliced buckets, like a desk calendar —
//! events for "today" sit in today's bucket, events a year out wait for
//! the calendar to wrap. With bucket widths tuned to the event-time
//! distribution, enqueue and dequeue are amortized O(1).
//!
//! [`CalendarQueue`] implements the same contract as the scheduler's heap
//! (non-decreasing pops, FIFO tie-breaking by insertion sequence) and
//! resizes itself as the population grows or shrinks. Property tests check
//! it agrees exactly with the binary heap; the `engine` benchmark compares
//! their throughput under the simulator's hold pattern.

use crate::time::SimTime;

/// One stored event.
#[derive(Debug, Clone)]
struct Item<E> {
    time: f64,
    seq: u64,
    event: E,
}

/// A self-resizing calendar queue.
#[derive(Debug, Clone)]
pub struct CalendarQueue<E> {
    /// Buckets; each kept sorted by `(time, seq)` ascending.
    buckets: Vec<Vec<Item<E>>>,
    /// Width of each bucket in time units.
    width: f64,
    /// Bucket index the next dequeue starts searching from.
    current: usize,
    /// Start time of the `current` bucket's active slice.
    bucket_top: f64,
    len: usize,
    next_seq: u64,
    last_popped: f64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// An empty queue with a small initial calendar.
    pub fn new() -> Self {
        Self::with_layout(8, 1.0, 0.0)
    }

    fn with_layout(n_buckets: usize, width: f64, start: f64) -> Self {
        assert!(n_buckets.is_power_of_two(), "bucket count must be 2^k");
        assert!(width > 0.0);
        let mut buckets = Vec::with_capacity(n_buckets);
        buckets.resize_with(n_buckets, Vec::new);
        let current = ((start / width) as usize) & (n_buckets - 1);
        CalendarQueue {
            buckets,
            width,
            current,
            bucket_top: (start / width).floor() * width + width,
            len: 0,
            next_seq: 0,
            last_popped: start,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over all pending events in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &E)> {
        self.buckets
            .iter()
            .flatten()
            .map(|it| (SimTime::new(it.time), &it.event))
    }

    fn bucket_of(&self, time: f64) -> usize {
        ((time / self.width) as usize) & (self.buckets.len() - 1)
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` precedes the last popped time (no time travel).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let t = at.as_f64();
        assert!(
            t >= self.last_popped,
            "cannot schedule into the past: {t} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.bucket_of(t);
        let bucket = &mut self.buckets[idx];
        // Insert keeping the bucket sorted by (time, seq). Appends are the
        // common case under the simulator's hold pattern.
        let pos = bucket
            .partition_point(|it| (it.time, it.seq) <= (t, seq));
        bucket.insert(
            pos,
            Item {
                time: t,
                seq,
                event,
            },
        );
        self.len += 1;
        // If the event lands in a day before the current scan position
        // (possible after a peek advanced the position past `last_popped`),
        // walk the position back so the dequeue scan cannot miss it.
        let event_top = (t / self.width).floor() * self.width + self.width;
        if event_top < self.bucket_top {
            self.current = idx;
            self.bucket_top = event_top;
        }
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Advances the scan position (`current`, `bucket_top`) to the bucket
    /// holding the earliest pending event. Requires `len > 0`. Amortized
    /// O(1) under the hold pattern: each day is visited once per wrap.
    fn advance_to_next(&mut self) {
        debug_assert!(self.len > 0);
        // Scan calendar "days" starting from the current bucket; an event
        // in the current bucket only counts if it falls inside the active
        // year slice (otherwise it belongs to a future wrap-around).
        loop {
            if let Some(first) = self.buckets[self.current].first() {
                if first.time < self.bucket_top {
                    return;
                }
            }
            self.current = (self.current + 1) & (self.buckets.len() - 1);
            self.bucket_top += self.width;
            // Safety valve: if a full calendar year passes without finding
            // anything (all events far in the future), jump straight to the
            // earliest event's day.
            if self.current == 0 {
                if let Some(min_t) = self.min_time() {
                    if min_t >= self.bucket_top + self.width * self.buckets.len() as f64 {
                        self.current = self.bucket_of(min_t);
                        self.bucket_top = (min_t / self.width).floor() * self.width + self.width;
                    }
                }
            }
        }
    }

    /// Pops the earliest event (FIFO among ties).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_next();
        let item = self.buckets[self.current].remove(0);
        self.len -= 1;
        self.last_popped = item.time;
        self.maybe_shrink();
        Some((SimTime::new(item.time), item.event))
    }

    /// Removes the earliest event without recording its time as popped.
    ///
    /// Used by the scheduler backing to drop lazily cancelled entries: the
    /// no-time-travel floor (`last_popped`) must track *live* pops only, so
    /// discarding a cancelled head does not tighten what may be scheduled.
    pub(crate) fn discard_next(&mut self) -> bool {
        if self.len == 0 {
            return false;
        }
        self.advance_to_next();
        self.buckets[self.current].remove(0);
        self.len -= 1;
        self.maybe_shrink();
        true
    }

    fn maybe_shrink(&mut self) {
        if self.len < self.buckets.len() / 4 && self.buckets.len() > 8 {
            self.resize(self.buckets.len() / 2);
        }
    }

    /// Earliest pending event without removing it, amortized O(1).
    ///
    /// Takes `&mut self` because it advances the internal scan position —
    /// the same work a subsequent [`CalendarQueue::pop`] would do.
    pub fn peek(&mut self) -> Option<(SimTime, &E)> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_next();
        let first = self.buckets[self.current]
            .first()
            .expect("advance_to_next positioned on a non-empty bucket");
        Some((SimTime::new(first.time), &first.event))
    }

    /// Timestamp of the earliest pending event (O(buckets), `&self`).
    pub fn peek_time(&self) -> Option<SimTime> {
        self.min_time().map(SimTime::new)
    }

    fn min_time(&self) -> Option<f64> {
        self.buckets
            .iter()
            .filter_map(|b| b.first())
            .map(|it| (it.time, it.seq))
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
            .map(|(t, _)| t)
    }

    /// Rebuilds the calendar with `n_buckets` buckets, re-estimating the
    /// bucket width from the current event spacing.
    fn resize(&mut self, n_buckets: usize) {
        let mut items: Vec<Item<E>> = self.buckets.drain(..).flatten().collect();
        items.sort_by(|a, b| (a.time, a.seq).partial_cmp(&(b.time, b.seq)).expect("finite"));
        // Width heuristic: average gap between consecutive distinct event
        // times (Brown's sampling rule, simplified), clamped to stay sane.
        let width = if items.len() >= 2 {
            let span = items.last().expect("non-empty").time - items[0].time;
            (span / items.len() as f64).max(1e-9) * 2.0
        } else {
            self.width
        };
        let start = items.first().map_or(self.last_popped, |it| it.time.min(self.last_popped));
        let mut fresh = Self::with_layout(n_buckets.max(8), width, start);
        fresh.next_seq = self.next_seq;
        fresh.last_popped = self.last_popped;
        for it in items {
            let idx = fresh.bucket_of(it.time);
            fresh.buckets[idx].push(it); // already in (time, seq) order
            fresh.len += 1;
        }
        *self = fresh;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: f64) -> SimTime {
        SimTime::new(x)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = CalendarQueue::new();
        for &x in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule_at(t(x), x as u32);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fifo_within_ties() {
        let mut q = CalendarQueue::new();
        for i in 0..20 {
            q.schedule_at(t(7.0), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_hold_pattern() {
        let mut q = CalendarQueue::new();
        q.schedule_at(t(0.0), 0u64);
        let mut now = 0.0;
        let mut popped = 0u64;
        // Deterministic pseudo-random increments.
        let mut state = 12345u64;
        for _ in 0..5000 {
            let (time, _) = q.pop().expect("non-empty");
            assert!(time.as_f64() >= now, "time went backwards");
            now = time.as_f64();
            popped += 1;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let gap = ((state >> 33) % 1000) as f64 / 100.0;
            q.schedule_at(t(now + gap), popped);
        }
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn far_future_events_are_found() {
        let mut q = CalendarQueue::new();
        q.schedule_at(t(1e6), "far");
        q.schedule_at(t(0.5), "near");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn growth_and_shrink_preserve_contents() {
        let mut q = CalendarQueue::new();
        for i in 0..1000u32 {
            q.schedule_at(t(i as f64 * 0.1), i);
        }
        assert_eq!(q.len(), 1000);
        let mut last = -1.0;
        let mut count = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time.as_f64() >= last);
            last = time.as_f64();
            count += 1;
        }
        assert_eq!(count, 1000);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.schedule_at(t(3.0), 'a');
        q.schedule_at(t(1.0), 'b');
        assert_eq!(q.peek_time(), Some(t(1.0)));
        let (pt, _) = q.pop().unwrap();
        assert_eq!(pt, t(1.0));
        assert_eq!(q.peek_time(), Some(t(3.0)));
    }

    #[test]
    fn peek_then_schedule_earlier_still_pops_in_order() {
        let mut q = CalendarQueue::new();
        q.schedule_at(t(50.0), "far");
        // Peeking advances the internal scan position to day 50...
        assert_eq!(q.peek().map(|(tm, _)| tm), Some(t(50.0)));
        // ...but an insert behind the scan position must still pop first.
        q.schedule_at(t(2.0), "near");
        assert_eq!(q.peek().map(|(tm, _)| tm), Some(t(2.0)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn discard_next_drops_head_without_raising_floor() {
        let mut q = CalendarQueue::new();
        q.schedule_at(t(5.0), "dead");
        q.schedule_at(t(9.0), "live");
        assert!(q.discard_next());
        // The floor tracks live pops only, so t=3.0 is still schedulable.
        q.schedule_at(t(3.0), "late");
        assert_eq!(q.pop().unwrap().1, "late");
        assert_eq!(q.pop().unwrap().1, "live");
        assert!(!q.discard_next());
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = CalendarQueue::new();
        q.schedule_at(t(5.0), ());
        q.pop();
        q.schedule_at(t(1.0), ());
    }

    #[test]
    fn empty_queue_behaves() {
        let mut q: CalendarQueue<()> = CalendarQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        assert!(q.pop().is_none());
    }
}
