//! Simulation time.
//!
//! Time in the simulator is a non-negative, finite `f64` measured in abstract
//! *time units* (the paper's experiments use a mean internal-event duration of
//! 1.0 time units and message hops of 0.01 time units). [`SimTime`] wraps the
//! raw value to provide a total order (NaN is rejected at construction) so it
//! can key the pending-event set.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time.
///
/// `SimTime` is totally ordered; constructing one from a NaN or negative
/// value panics, which turns model bugs (e.g. negative delays from a broken
/// distribution) into loud failures instead of silent heap corruption.
#[derive(Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point, panicking on NaN or negative input.
    #[inline]
    pub fn new(t: f64) -> Self {
        assert!(t.is_finite(), "SimTime must be finite, got {t}");
        assert!(t >= 0.0, "SimTime must be non-negative, got {t}");
        SimTime(t)
    }

    /// Raw value in time units.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Elapsed time since `earlier`; panics if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> f64 {
        assert!(
            earlier.0 <= self.0,
            "since: {earlier} is later than {self}"
        );
        self.0 - earlier.0
    }

    /// The later of two time points.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two time points.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed finite, so partial_cmp never fails.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    #[inline]
    fn add(self, delay: f64) -> SimTime {
        SimTime::new(self.0 + delay)
    }
}

impl AddAssign<f64> for SimTime {
    #[inline]
    fn add_assign(&mut self, delay: f64) {
        *self = *self + delay;
    }
}

impl Sub for SimTime {
    type Output = f64;

    #[inline]
    fn sub(self, other: SimTime) -> f64 {
        self.since(other)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<f64> for SimTime {
    #[inline]
    fn from(t: f64) -> Self {
        SimTime::new(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_origin() {
        assert_eq!(SimTime::ZERO.as_f64(), 0.0);
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimTime::new(1.5);
        let b = a + 2.5;
        assert_eq!(b.as_f64(), 4.0);
        assert_eq!(b - a, 2.5);
        assert_eq!(b.since(a), 2.5);
        let mut c = a;
        c += 0.5;
        assert_eq!(c.as_f64(), 2.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_time_rejected() {
        let _ = SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "later than")]
    fn since_rejects_future() {
        let _ = SimTime::new(1.0).since(SimTime::new(2.0));
    }

    #[test]
    fn display_and_debug() {
        let t = SimTime::new(1.25);
        assert_eq!(format!("{t}"), "1.2500");
        assert_eq!(format!("{t:?}"), "t=1.250000");
    }

    #[test]
    fn from_f64() {
        let t: SimTime = 3.0.into();
        assert_eq!(t.as_f64(), 3.0);
    }
}
