//! Property-style tests for the simkit engine invariants.
//!
//! These were originally `proptest` properties; they are now expressed as
//! plain tests iterating over deterministically generated random cases (the
//! generator is `SimRng` itself, so the whole suite stays dependency-free and
//! exactly reproducible).

use simkit::prelude::*;

/// Number of random cases per property.
const CASES: u64 = 64;

/// Events are always popped in non-decreasing time order, regardless of the
/// insertion order, and FIFO within equal timestamps.
#[test]
fn scheduler_orders_events() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x5EED_0001 ^ case);
        let n = 1 + gen.index(200);
        let times: Vec<f64> = (0..n).map(|_| gen.uniform_in(0.0, 1000.0)).collect();
        let mut sched = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            sched.schedule_at(SimTime::new(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut seen_at_time: Vec<usize> = vec![];
        while let Some(f) = sched.pop() {
            assert!(f.time >= last_time, "time went backwards");
            if f.time > last_time {
                seen_at_time.clear();
            }
            // FIFO within ties: insertion indices at equal time are increasing.
            if let Some(&prev) = seen_at_time.last() {
                if f.time == last_time {
                    assert!(f.event > prev, "tie broken out of FIFO order");
                }
            }
            seen_at_time.push(f.event);
            last_time = f.time;
        }
    }
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn cancellation_removes_exactly_the_cancelled() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x5EED_0002 ^ case);
        let n = 1 + gen.index(100);
        let times: Vec<f64> = (0..n).map(|_| gen.uniform_in(0.0, 100.0)).collect();
        let cancel_mask: Vec<bool> = (0..n).map(|_| gen.bernoulli(0.5)).collect();
        let mut sched = Scheduler::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, sched.schedule_at(SimTime::new(t), i)))
            .collect();
        let mut expected: Vec<usize> = vec![];
        for (i, h) in &handles {
            if cancel_mask[*i] {
                assert!(sched.cancel(*h));
            } else {
                expected.push(*i);
            }
        }
        let mut popped: Vec<usize> = vec![];
        while let Some(f) = sched.pop() {
            popped.push(f.event);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        assert_eq!(popped, expected);
    }
}

/// The exponential sampler is non-negative and scales with its mean.
#[test]
fn exponential_scales() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x5EED_0003 ^ case);
        let seed = gen.next_u64();
        let mean = gen.uniform_in(0.001, 1000.0);
        let mut rng = SimRng::new(seed);
        let n = 2000;
        let sum: f64 = (0..n)
            .map(|_| {
                let x = rng.exp(mean);
                assert!(x >= 0.0);
                x
            })
            .sum();
        let sample_mean = sum / n as f64;
        // Loose 5-sigma bound: sd of the mean is mean/sqrt(n).
        assert!(
            (sample_mean - mean).abs() < 5.0 * mean / (n as f64).sqrt() + 1e-9,
            "sample mean {sample_mean} for mean {mean} (case {case})"
        );
    }
}

/// Forked substreams are reproducible and order-independent.
#[test]
fn fork_reproducibility() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x5EED_0004 ^ case);
        let seed = gen.next_u64();
        let n = 1 + gen.index(10);
        let streams: Vec<u64> = (0..n).map(|_| gen.next_u64()).collect();
        let root = SimRng::new(seed);
        let first: Vec<Vec<u64>> = streams
            .iter()
            .map(|&s| {
                let mut r = root.fork(s);
                (0..10).map(|_| r.next_u64()).collect()
            })
            .collect();
        // Re-fork in reverse order; identical streams must match.
        for (i, &s) in streams.iter().enumerate().rev() {
            let mut r = root.fork(s);
            let again: Vec<u64> = (0..10).map(|_| r.next_u64()).collect();
            assert_eq!(again, first[i]);
        }
    }
}

/// Tally::merge is equivalent to recording sequentially, at any split.
#[test]
fn tally_merge_any_split() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x5EED_0005 ^ case);
        let n = 2 + gen.index(198);
        let xs: Vec<f64> = (0..n).map(|_| gen.uniform_in(-1e6, 1e6)).collect();
        let split = gen.index(n + 1);
        let mut whole = Tally::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = Tally::new();
        let mut b = Tally::new();
        for &x in &xs[..split] {
            a.record(x);
        }
        for &x in &xs[split..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        assert!((a.variance() - whole.variance()).abs() <= 1e-5 * (1.0 + whole.variance().abs()));
    }
}

/// index_excluding is a bijection-respecting remap: never the excluded
/// index, always in range.
#[test]
fn index_excluding_in_range() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x5EED_0006 ^ case);
        let seed = gen.next_u64();
        let n = 2 + gen.index(48);
        let not = gen.index(n);
        let mut rng = SimRng::new(seed);
        for _ in 0..200 {
            let i = rng.index_excluding(n, not);
            assert!(i < n);
            assert_ne!(i, not);
        }
    }
}

/// A deterministic end-to-end check: two identical models with the same seed
/// produce identical event counts and end times.
#[test]
fn runs_are_deterministic() {
    struct M {
        rng: SimRng,
        hops: u64,
    }
    impl Model for M {
        type Event = u32;
        fn handle(&mut self, sched: &mut Scheduler<u32>, fired: Fired<u32>) -> Control {
            self.hops = self.hops.wrapping_mul(31).wrapping_add(fired.event as u64);
            if self.rng.bernoulli(0.7) {
                sched.schedule_in(self.rng.exp(1.0), fired.event.wrapping_add(1));
            }
            if self.rng.bernoulli(0.5) {
                sched.schedule_in(self.rng.exp(2.0), fired.event.wrapping_mul(3));
            }
            Control::Continue
        }
    }

    let run = |seed: u64| {
        let mut m = M {
            rng: SimRng::new(seed),
            hops: 0,
        };
        let mut s = Scheduler::new();
        for i in 0..10 {
            s.schedule_at(SimTime::new(i as f64 * 0.1), i);
        }
        let out = run_until(&mut m, &mut s, SimTime::new(50.0));
        (m.hops, out.events_handled, out.end_time)
    };

    assert_eq!(run(99), run(99));
    assert_ne!(run(99).0, run(100).0);
}

/// The heap-backed and calendar-backed `Scheduler` produce identical pop
/// sequences under the simulator's real operation mix: bursts of schedules
/// (hold pattern, long-tail exponential offsets, exact ties), cancellations
/// of arbitrary live handles, interleaved `peek_time`, and fill/drain waves
/// that push the calendar through its resize-grow *and* resize-shrink
/// boundaries.
#[test]
fn scheduler_backends_agree_under_real_mix() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x5EED_0008 ^ case);
        let mut heap = Scheduler::new();
        let mut cal = Scheduler::with_backend(QueueBackend::Calendar);
        assert_eq!(cal.backend(), QueueBackend::Calendar);
        let mut next_id = 0u64;
        let mut live: Vec<(simkit::event::EventHandle, simkit::event::EventHandle)> = vec![];
        // Three waves: grow (schedule-heavy), churn (balanced with cancels
        // and peeks), drain (pop-heavy, shrinking the calendar back down).
        for &(p_sched, p_cancel, ops) in
            &[(0.85, 0.05, 400usize), (0.45, 0.15, 300), (0.10, 0.05, 500)]
        {
            for _ in 0..ops {
                let r = gen.uniform_in(0.0, 1.0);
                if r < p_sched {
                    // Ties are common in the simulator (zero-latency hops),
                    // so schedule exact duplicates with probability 1/4.
                    let dt = if gen.bernoulli(0.25) {
                        0.0
                    } else {
                        let mean = gen.uniform_in(0.01, 200.0);
                        gen.exp(mean)
                    };
                    let at = SimTime::new(heap.now().as_f64() + dt);
                    next_id += 1;
                    let (a, b) = (heap.schedule_at(at, next_id), cal.schedule_at(at, next_id));
                    live.push((a, b));
                } else if r < p_sched + p_cancel && !live.is_empty() {
                    let (a, b) = live.swap_remove(gen.index(live.len()));
                    assert_eq!(heap.cancel(a), cal.cancel(b));
                } else {
                    if gen.bernoulli(0.3) {
                        assert_eq!(heap.peek_time(), cal.peek_time());
                    }
                    let x = heap.pop().map(|f| (f.time, f.event));
                    let y = cal.pop().map(|f| (f.time, f.event));
                    assert_eq!(x, y, "backends diverged (case {case})");
                }
            }
            assert_eq!(heap.len(), cal.len(), "live counts diverged (case {case})");
        }
        // Drain both to the end.
        loop {
            let x = heap.pop().map(|f| (f.time, f.event));
            let y = cal.pop().map(|f| (f.time, f.event));
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
        assert_eq!(heap.popped(), cal.popped());
        assert_eq!(heap.scheduled(), cal.scheduled());
        assert_eq!(heap.now(), cal.now());
    }
}

/// The calendar queue and the binary-heap scheduler agree exactly on any
/// interleaving of schedules and pops (same times, same FIFO tie-breaking)
/// — two pending-event-set implementations validating each other.
#[test]
fn calendar_queue_matches_heap() {
    use simkit::calendar::CalendarQueue;
    for case in 0..CASES {
        let mut gen = SimRng::new(0x5EED_0007 ^ case);
        let n_ops = 1 + gen.index(300);
        let mut heap = Scheduler::new();
        let mut cal = CalendarQueue::new();
        let mut next_id = 0u64;
        let mut frontier = 0.0f64; // latest popped time: schedule at/after it
        for _ in 0..n_ops {
            if gen.bernoulli(0.5) {
                let from_heap = heap.pop().map(|f| (f.time, f.event));
                let from_cal = cal.pop();
                assert_eq!(from_heap, from_cal);
                if let Some((t, _)) = from_heap {
                    frontier = t.as_f64();
                }
            } else {
                let at = SimTime::new(frontier + gen.uniform_in(0.0, 500.0));
                next_id += 1;
                heap.schedule_at(at, next_id);
                cal.schedule_at(at, next_id);
            }
        }
        // Drain both.
        loop {
            let a = heap.pop().map(|f| (f.time, f.event));
            let b = cal.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
