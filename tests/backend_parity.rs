//! Cross-backend parity: the heap scheduler, the calendar-queue scheduler
//! and the conservative parallel backend must produce *byte-identical*
//! deterministic artifacts (`mck.run/v1`: config, outcome counters, metrics
//! snapshot) for every parallel-compatible configuration.
//!
//! The configurations are generated property-style from a seeded RNG so the
//! sweep covers protocol kinds, world sizes, mobility tempos and worker
//! counts without hand-picking lucky cases — any divergence in any counter
//! of any run fails with the offending config's description.

use mck::artifact::run_artifact;
use mck::prelude::*;
use pardes as par;
use simkit::event::QueueBackend;
use simkit::rng::SimRng;

/// Serializes everything the simulator can observe about a run.
fn fingerprint(cfg: &SimConfig, r: &RunReport) -> String {
    run_artifact(cfg, r).to_pretty()
}

fn serial_with(cfg: &SimConfig, queue: QueueBackend) -> String {
    let mut c = cfg.clone();
    c.queue = queue;
    let report = Simulation::run(c.clone());
    fingerprint(cfg, &report)
}

fn parallel_with(cfg: &SimConfig, workers: usize) -> String {
    let report = par::run(cfg.clone(), workers, Instrumentation::off());
    fingerprint(cfg, &report)
}

/// One random, parallel-compatible configuration.
fn random_cfg(rng: &mut SimRng) -> SimConfig {
    let kinds = [CicKind::Qbc, CicKind::Bcs, CicKind::Tp, CicKind::Uncoordinated];
    SimConfig {
        n_mhs: 4 + (rng.uniform() * 16.0) as usize,
        n_mss: 2 + (rng.uniform() * 6.0) as usize,
        p_send: 0.2 + rng.uniform() * 0.6,
        // Fast mobility so windows see hand-offs, disconnections and
        // cross-partition migrations, not just sends.
        t_switch: 20.0 + rng.uniform() * 300.0,
        p_switch: 0.5 + rng.uniform() * 0.5,
        reconnect_mean: 50.0 + rng.uniform() * 200.0,
        heterogeneity: if rng.bernoulli(0.5) { 0.3 } else { 0.0 },
        protocol: ProtocolChoice::Cic(kinds[(rng.uniform() * 4.0) as usize % 4]),
        horizon: 200.0 + rng.uniform() * 400.0,
        seed: (rng.uniform() * 1e9) as u64,
        ..Default::default()
    }
}

#[test]
fn randomized_configs_agree_across_all_backends() {
    let mut rng = SimRng::new(0xBAC0);
    for case in 0..12 {
        let cfg = random_cfg(&mut rng);
        assert!(
            Simulation::parallel_compatible(&cfg),
            "case {case}: generator must stay inside the parallel gate"
        );
        let heap = serial_with(&cfg, QueueBackend::Heap);
        let calendar = serial_with(&cfg, QueueBackend::Calendar);
        assert_eq!(
            heap, calendar,
            "case {case}: heap vs calendar diverged for {:?}",
            cfg.protocol
        );
        let workers = 2 + case % 3;
        let parallel = parallel_with(&cfg, workers);
        assert_eq!(
            heap, parallel,
            "case {case}: serial vs parallel({workers}) diverged for {:?} \
             (n_mhs={}, n_mss={}, t_switch={}, seed={})",
            cfg.protocol, cfg.n_mhs, cfg.n_mss, cfg.t_switch, cfg.seed
        );
    }
}

#[test]
fn issue_sizes_and_seeds_are_byte_identical() {
    // The acceptance matrix: N in {10, 100, 1000} hosts, three seeds each,
    // serial heap vs 4-worker parallel.
    for &n in &[10usize, 100, 1000] {
        for seed in [1u64, 2, 3] {
            let cfg = SimConfig {
                n_mhs: n,
                n_mss: 8,
                t_switch: 200.0,
                horizon: if n >= 1000 { 50.0 } else { 400.0 },
                seed,
                ..Default::default()
            };
            let serial = serial_with(&cfg, QueueBackend::Heap);
            let parallel = parallel_with(&cfg, 4);
            assert_eq!(serial, parallel, "n={n} seed={seed} diverged");
        }
    }
}

#[test]
fn parity_holds_with_metrics_registry_attached() {
    // The metrics snapshot is part of the artifact: the merged registry
    // (counter values *and* registration order) must match the serial one.
    let cfg = SimConfig {
        n_mhs: 20,
        n_mss: 6,
        t_switch: 100.0,
        horizon: 500.0,
        seed: 11,
        ..Default::default()
    };
    let serial = {
        let mut instr = Instrumentation::off();
        instr.metrics = true;
        let report = Simulation::run_with(cfg.clone(), instr);
        fingerprint(&cfg, &report)
    };
    let parallel = {
        let mut instr = Instrumentation::off();
        instr.metrics = true;
        let report = par::run(cfg.clone(), 3, instr);
        fingerprint(&cfg, &report)
    };
    assert_eq!(serial, parallel);
}

#[test]
fn incompatible_configs_fall_back_to_serial() {
    // Finite bandwidth is outside the gate; `pardes::run` must still
    // produce the exact serial result by falling back.
    let cfg = SimConfig {
        n_mhs: 8,
        n_mss: 4,
        wireless_bandwidth: 10_000.0,
        t_switch: 100.0,
        horizon: 300.0,
        seed: 5,
        ..Default::default()
    };
    assert!(!Simulation::parallel_compatible(&cfg));
    let serial = serial_with(&cfg, QueueBackend::Heap);
    let fallback = parallel_with(&cfg, 4);
    assert_eq!(serial, fallback);
}
