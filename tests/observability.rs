//! End-to-end checks of the observability layer: structured traces, the
//! metrics registry, and machine-readable artifacts, all driven through the
//! composed simulator.

use std::path::Path;

use mck::artifact;
use mck::prelude::*;
use simkit::json::{self, Json};
use simkit::trace::{JsonlSink, Tracer};

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        protocol: ProtocolChoice::Cic(CicKind::Qbc),
        t_switch: 200.0,
        p_switch: 0.8,
        horizon: 1000.0,
        seed,
        ..Default::default()
    }
}

fn traced_run(cfg: SimConfig, path: &Path) -> RunReport {
    let sink = JsonlSink::create(path).expect("create trace file");
    let instr = Instrumentation {
        tracer: Tracer::disabled().with_jsonl(sink),
        metrics: true,
        ..Instrumentation::off()
    };
    Simulation::run_with(cfg, instr)
}

#[test]
fn trace_streams_are_byte_identical_across_same_seed_runs() {
    let dir = std::env::temp_dir();
    let a_path = dir.join("mck_obs_trace_a.jsonl");
    let b_path = dir.join("mck_obs_trace_b.jsonl");
    let a = traced_run(cfg(7), &a_path);
    let b = traced_run(cfg(7), &b_path);
    assert_eq!(a.n_tot(), b.n_tot());
    let a_bytes = std::fs::read(&a_path).unwrap();
    let b_bytes = std::fs::read(&b_path).unwrap();
    assert!(!a_bytes.is_empty(), "trace stream is empty");
    assert_eq!(a_bytes, b_bytes, "same seed must yield identical traces");

    // A different seed yields a different stream.
    let c_path = dir.join("mck_obs_trace_c.jsonl");
    let _c = traced_run(cfg(8), &c_path);
    assert_ne!(a_bytes, std::fs::read(&c_path).unwrap());
    for p in [&a_path, &b_path, &c_path] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn checkpoint_trace_events_match_n_tot() {
    let path = std::env::temp_dir().join("mck_obs_trace_count.jsonl");
    let r = traced_run(cfg(11), &path);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut checkpoints = 0u64;
    let mut last_seq = None;
    let mut lines = 0u64;
    for line in text.lines() {
        let v = json::parse(line).expect("every line parses as JSON");
        let ev = v.get("ev").and_then(Json::as_str).expect("has 'ev'");
        let seq = v.get("seq").and_then(Json::as_u64).expect("has 'seq'");
        if let Some(prev) = last_seq {
            assert_eq!(seq, prev + 1, "sequence numbers must be contiguous");
        }
        last_seq = Some(seq);
        lines += 1;
        if ev == "checkpoint" {
            checkpoints += 1;
        }
    }
    assert_eq!(
        checkpoints,
        r.n_tot(),
        "one checkpoint trace event per counted checkpoint"
    );
    assert_eq!(lines, r.trace_emitted);
    assert!(r.trace_emitted > r.n_tot(), "there are also send/deliver events");
}

#[test]
fn memory_sink_retains_tail_of_stream() {
    let instr = Instrumentation {
        tracer: Tracer::disabled().with_memory(64),
        ..Instrumentation::off()
    };
    let r = Simulation::run_with(cfg(3), instr);
    let mem = r.trace_events.as_ref().expect("memory sink retained");
    assert_eq!(mem.len(), 64);
    assert_eq!(mem.len() as u64 + mem.dropped(), r.trace_emitted);
    // The ring keeps the newest 64 records of the stream, in order.
    for (i, rec) in mem.records().enumerate() {
        assert_eq!(rec.seq, mem.dropped() + i as u64);
    }
}

#[test]
fn metrics_snapshot_agrees_with_report() {
    let c = cfg(5);
    let r = Simulation::run_with(
        c,
        Instrumentation {
            metrics: true,
            ..Instrumentation::off()
        },
    );
    let m = &r.metrics;
    assert_eq!(m.counter("ckpt.total"), Some(r.n_tot()));
    assert_eq!(m.counter("ckpt.forced"), Some(r.ckpts.forced));
    assert_eq!(m.counter("ckpt.basic"), Some(r.ckpts.basic()));
    assert_eq!(m.counter("msg.sent"), Some(r.msgs_sent));
    assert_eq!(m.counter("msg.delivered"), Some(r.msgs_delivered));
    assert_eq!(m.counter("run.handoffs"), Some(r.handoffs));
    assert_eq!(
        m.counter("net.piggyback_bytes"),
        Some(r.net.piggyback_bytes)
    );
    // Per-MH checkpoint counters sum to the total.
    let per_mh: u64 = (0..10)
        .map(|i| m.counter(&format!("mh.{i}.ckpts")).unwrap_or(0))
        .sum();
    assert_eq!(per_mh, r.n_tot());
    // An uninstrumented run produces an empty snapshot.
    let plain = Simulation::run(cfg(5));
    assert!(plain.metrics.is_empty());
}

#[test]
fn run_artifact_round_trips_through_disk() {
    let c = cfg(13);
    let r = Simulation::run_with(
        c.clone(),
        Instrumentation {
            metrics: true,
            profile: true,
            ..Instrumentation::off()
        },
    );
    let art = artifact::run_artifact(&c, &r);
    let path = std::env::temp_dir().join("mck_obs_artifact.json");
    artifact::write(&path, &art).unwrap();
    let back = artifact::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(artifact::validate(&back).unwrap(), artifact::RUN_SCHEMA);
    assert_eq!(
        back.get("outcome").and_then(|o| o.get("n_tot")).and_then(Json::as_u64),
        Some(r.n_tot())
    );
    assert_eq!(
        back.get("config").and_then(|cf| cf.get("seed")).and_then(Json::as_u64),
        Some(13)
    );
    assert!(
        back.get("profile").is_none(),
        "run artifacts are fully deterministic; wall-clock data lives in mck.profile/v1"
    );
    let text = artifact::describe(&back).unwrap();
    assert!(text.contains("QBC"));
}
