//! End-to-end behaviour of the coordinated baselines in the mobile setting.

use mck::prelude::*;

fn cfg(protocol: ProtocolChoice, p_switch: f64) -> SimConfig {
    SimConfig {
        protocol,
        t_switch: 300.0,
        p_switch,
        horizon: 2000.0,
        seed: 17,
        ..Default::default()
    }
}

#[test]
fn chandy_lamport_checkpoints_everyone_per_round() {
    let interval = 200.0;
    let r = Simulation::run(cfg(ProtocolChoice::ChandyLamport { interval }, 1.0));
    // ~10 rounds × 10 hosts coordinated checkpoints (plus basic ones).
    assert!(r.ckpts.coordinated > 0);
    let rounds = (2000.0 / interval) as u64;
    // Every connected host checkpoints each round; with P_switch=1 everyone
    // stays connected, so expect close to rounds × n.
    let expect = rounds * 10;
    assert!(
        r.ckpts.coordinated >= expect - 10 && r.ckpts.coordinated <= expect,
        "coordinated={} expected ≈{expect}",
        r.ckpts.coordinated
    );
    // Marker flood: n(n-1) control messages per round, plus mobility msgs.
    assert!(r.net.control_msgs as f64 >= 0.8 * (rounds * 90) as f64);
}

#[test]
fn chandy_lamport_rounds_complete_without_disconnections() {
    let r = Simulation::run(cfg(ProtocolChoice::ChandyLamport { interval: 200.0 }, 1.0));
    assert!(
        !r.coord_round_latencies.is_empty(),
        "rounds should complete while everyone stays connected"
    );
    // Latencies are short when nobody is disconnected (a few hops).
    let mean: f64 =
        r.coord_round_latencies.iter().sum::<f64>() / r.coord_round_latencies.len() as f64;
    assert!(mean < 10.0, "mean round latency {mean} unexpectedly high");
}

#[test]
fn disconnections_stall_round_completion() {
    // With voluntary disconnections, markers for offline hosts wait out the
    // disconnection: round latency inflates or rounds stop completing —
    // the paper's "global checkpoint collection latency" point.
    let connected = Simulation::run(cfg(ProtocolChoice::ChandyLamport { interval: 300.0 }, 1.0));
    let disconnecting =
        Simulation::run(cfg(ProtocolChoice::ChandyLamport { interval: 300.0 }, 0.5));
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::INFINITY // no round ever completed: worst case
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let m_conn = mean(&connected.coord_round_latencies);
    let m_disc = mean(&disconnecting.coord_round_latencies);
    assert!(
        m_disc > m_conn,
        "disconnections should inflate round latency: {m_conn} vs {m_disc}"
    );
}

#[test]
fn prakash_singhal_never_coordinates_more_than_chandy_lamport() {
    // Under the paper's dense uniform traffic the transitive dependency
    // sets saturate, so PS degenerates to CL — but it must never exceed it.
    let interval = 200.0;
    let cl = Simulation::run(cfg(ProtocolChoice::ChandyLamport { interval }, 1.0));
    let ps = Simulation::run(cfg(ProtocolChoice::PrakashSinghal { interval }, 1.0));
    assert!(
        ps.ckpts.coordinated <= cl.ckpts.coordinated,
        "PS={} CL={}",
        ps.ckpts.coordinated,
        cl.ckpts.coordinated
    );
    assert!(ps.net.control_msgs <= cl.net.control_msgs);
}

#[test]
fn prakash_singhal_wins_under_sparse_communication() {
    // With rare communication, dependency sets stay small between rounds,
    // so minimal-process coordination checkpoints strictly fewer processes
    // and sends strictly fewer control messages than the CL marker flood.
    let sparse = |protocol| SimConfig {
        protocol,
        t_switch: 500.0,
        p_switch: 1.0,
        p_send: 0.05,
        horizon: 1000.0,
        seed: 19,
        ..Default::default()
    };
    let cl = Simulation::run(sparse(ProtocolChoice::ChandyLamport { interval: 25.0 }));
    let ps = Simulation::run(sparse(ProtocolChoice::PrakashSinghal { interval: 25.0 }));
    assert!(
        ps.ckpts.coordinated < cl.ckpts.coordinated,
        "sparse traffic: PS={} should be < CL={}",
        ps.ckpts.coordinated,
        cl.ckpts.coordinated
    );
    assert!(
        ps.net.control_msgs < cl.net.control_msgs,
        "sparse traffic: PS ctl={} should be < CL ctl={}",
        ps.net.control_msgs,
        cl.net.control_msgs
    );
}

#[test]
fn prakash_singhal_piggybacks_dependency_bits() {
    let r = Simulation::run(cfg(ProtocolChoice::PrakashSinghal { interval: 200.0 }, 1.0));
    // 10 hosts ⇒ 2 bytes of dependency bits per sent message.
    assert!(r.net.piggyback_bytes > 0);
    let per_sent = r.net.piggyback_bytes as f64 / r.msgs_sent as f64;
    assert!((per_sent - 2.0).abs() < 1e-9, "per-sent piggyback {per_sent}");
}

#[test]
fn coordinated_control_messages_pay_location_searches() {
    // Every marker must locate its mobile destination: searches grow far
    // beyond the app-message count, the paper's point (1) against
    // coordinated checkpointing with MHs.
    let cl = Simulation::run(cfg(ProtocolChoice::ChandyLamport { interval: 100.0 }, 1.0));
    let cic = Simulation::run(cfg(ProtocolChoice::Cic(CicKind::Qbc), 1.0));
    let cl_searches_per_app = cl.net.searches as f64 / cl.msgs_sent as f64;
    let cic_searches_per_app = cic.net.searches as f64 / cic.msgs_sent as f64;
    assert!(
        cl_searches_per_app > cic_searches_per_app,
        "CL should need extra searches: {cl_searches_per_app:.3} vs {cic_searches_per_app:.3}"
    );
    assert!((cic_searches_per_app - 1.0).abs() < 1e-9, "CIC: one search per send");
}

#[test]
fn coordinated_runs_still_take_basic_checkpoints() {
    let r = Simulation::run(cfg(ProtocolChoice::ChandyLamport { interval: 500.0 }, 0.8));
    assert!(r.ckpts.basic() > 0, "mobility still mandates checkpoints");
    assert_eq!(r.ckpts.cell_switch, r.handoffs);
}

#[test]
fn koo_toueg_blocks_sends_during_sessions() {
    let r = Simulation::run(cfg(ProtocolChoice::KooToueg { interval: 50.0 }, 1.0));
    assert!(r.ckpts.coordinated > 0, "KT sessions must checkpoint");
    assert!(
        r.blocked_sends > 0,
        "dense traffic + frequent sessions must block some sends"
    );
    // Non-blocking protocols never suppress sends.
    let cl = Simulation::run(cfg(ProtocolChoice::ChandyLamport { interval: 50.0 }, 1.0));
    assert_eq!(cl.blocked_sends, 0);
    let ps = Simulation::run(cfg(ProtocolChoice::PrakashSinghal { interval: 50.0 }, 1.0));
    assert_eq!(ps.blocked_sends, 0);
}

#[test]
fn koo_toueg_coordinates_at_most_everyone_per_round() {
    let interval = 200.0;
    let kt = Simulation::run(cfg(ProtocolChoice::KooToueg { interval }, 1.0));
    let rounds = (2000.0 / interval) as u64;
    assert!(
        kt.ckpts.coordinated <= rounds * 10,
        "KT={} exceeds everyone-every-round",
        kt.ckpts.coordinated
    );
    assert!(kt.ckpts.coordinated >= rounds.saturating_sub(2), "sessions ran");
}

#[test]
fn koo_toueg_sessions_survive_disconnections() {
    // Sessions whose participants disconnect stall until reconnection (the
    // requests are buffered), but the run must stay live and blocked hosts
    // must eventually unblock enough to keep sending.
    let r = Simulation::run(cfg(ProtocolChoice::KooToueg { interval: 300.0 }, 0.6));
    assert!(r.msgs_sent > 100, "workload stalled: {} sends", r.msgs_sent);
    assert!(r.ckpts.coordinated > 0);
}
