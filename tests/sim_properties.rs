//! Property tests over the full simulator: invariants that must hold for
//! *any* configuration, protocol, seed and mobility pattern.

use causality::cut::is_consistent;
use cic::recovery::all_index_lines;
use mck::prelude::*;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = SimConfig> {
    (
        0usize..4,                       // protocol selector
        100.0f64..2000.0,                // t_switch
        prop_oneof![Just(1.0), 0.5f64..1.0], // p_switch
        prop_oneof![Just(0.0), 0.0f64..0.6], // heterogeneity
        any::<u64>(),                    // seed
        prop_oneof![Just(0.0), 0.0f64..0.4], // dup_prob
        2usize..12,                      // n_mhs
        2usize..6,                       // n_mss
    )
        .prop_map(
            |(proto, t_switch, p_switch, h, seed, dup_prob, n_mhs, n_mss)| SimConfig {
                protocol: ProtocolChoice::Cic(CicKind::ALL[proto]),
                t_switch,
                p_switch,
                heterogeneity: h,
                seed,
                dup_prob,
                n_mhs,
                n_mss,
                horizon: 400.0,
                record_trace: true,
                ..Default::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Structural invariants of every run.
    #[test]
    fn run_invariants(cfg in arb_config()) {
        let n = cfg.n_mhs;
        let r = Simulation::run(cfg.clone());
        // Conservation and consistency of counters.
        prop_assert_eq!(r.per_mh_ckpts.iter().sum::<u64>(), r.n_tot());
        prop_assert_eq!(r.ckpts.cell_switch, r.handoffs);
        prop_assert_eq!(r.ckpts.disconnect, r.disconnects);
        prop_assert!(r.reconnects <= r.disconnects);
        prop_assert!(r.msgs_delivered <= r.msgs_sent);
        prop_assert!(r.net.duplicates_suppressed <= r.net.duplicates_injected);
        prop_assert_eq!(r.net.app_msgs_sent, r.msgs_sent);
        prop_assert_eq!(r.net.app_msgs_delivered, r.msgs_delivered);
        prop_assert_eq!(r.per_mh_ckpts.len(), n);
        // The trace agrees with the counters.
        let trace = r.trace.as_ref().expect("trace recorded");
        prop_assert_eq!(trace.total_checkpoints() as u64, r.n_tot());
        prop_assert_eq!(trace.messages().len() as u64, r.msgs_sent);
        // Replacements only ever come from QBC.
        if !matches!(cfg.protocol, ProtocolChoice::Cic(CicKind::Qbc)) {
            prop_assert_eq!(r.replacements, 0);
        }
    }

    /// Determinism: the same config yields the identical run.
    #[test]
    fn determinism(cfg in arb_config()) {
        let a = Simulation::run(cfg.clone());
        let b = Simulation::run(cfg);
        prop_assert_eq!(a.n_tot(), b.n_tot());
        prop_assert_eq!(a.events, b.events);
        prop_assert_eq!(a.msgs_sent, b.msgs_sent);
        prop_assert_eq!(a.per_mh_ckpts, b.per_mh_ckpts);
        prop_assert_eq!(a.net.wireless_transmissions, b.net.wireless_transmissions);
        prop_assert_eq!(a.net.piggyback_bytes, b.net.piggyback_bytes);
    }

    /// Index-protocol safety on arbitrary configurations: every same-index
    /// recovery line of a BCS/QBC run is consistent, even with duplicated
    /// deliveries, heterogeneity and arbitrary system sizes.
    #[test]
    fn index_lines_consistent_everywhere(mut cfg in arb_config(), qbc in any::<bool>()) {
        cfg.protocol = ProtocolChoice::Cic(if qbc { CicKind::Qbc } else { CicKind::Bcs });
        let r = Simulation::run(cfg);
        let trace = r.trace.as_ref().expect("trace recorded");
        for (k, line) in all_index_lines(trace) {
            prop_assert!(
                is_consistent(trace, &line),
                "line {k} inconsistent (protocol {})",
                r.protocol
            );
        }
    }

    /// Recovery lines after any single failure are consistent and dominated
    /// by the volatile frontier, for every protocol.
    #[test]
    fn failure_recovery_consistent_everywhere(cfg in arb_config(), failed_sel in 0usize..12) {
        let n = cfg.n_mhs;
        let r = Simulation::run(cfg);
        let trace = r.trace.as_ref().expect("trace recorded");
        let failed = causality::trace::ProcId(failed_sel % n);
        let line = causality::recovery::recovery_line_after_failure(trace, &[failed]);
        prop_assert!(is_consistent(trace, &line));
        let cost = causality::recovery::rollback_cost(trace, &line, r.end_time);
        prop_assert!(cost.total_time_undone() >= 0.0);
        prop_assert!(cost.time_undone[failed.idx()] <= r.end_time + 1e-9);
    }
}
