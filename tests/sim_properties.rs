//! Property-style tests over the full simulator: invariants that must hold
//! for *any* configuration, protocol, seed and mobility pattern. Cases are
//! generated deterministically with `SimRng`.

use causality::cut::is_consistent;
use cic::recovery::all_index_lines;
use mck::prelude::*;
use simkit::prelude::SimRng;

const CASES: u64 = 24;

/// Deterministic random configuration mirroring the old proptest strategy.
fn gen_config(gen: &mut SimRng) -> SimConfig {
    let protocol = ProtocolChoice::Cic(CicKind::ALL[gen.index(4)]);
    let t_switch = gen.uniform_in(100.0, 2000.0);
    let p_switch = if gen.bernoulli(0.5) {
        1.0
    } else {
        gen.uniform_in(0.5, 1.0)
    };
    let heterogeneity = if gen.bernoulli(0.5) {
        0.0
    } else {
        gen.uniform_in(0.0, 0.6)
    };
    let seed = gen.next_u64();
    let dup_prob = if gen.bernoulli(0.5) {
        0.0
    } else {
        gen.uniform_in(0.0, 0.4)
    };
    let n_mhs = 2 + gen.index(10);
    let n_mss = 2 + gen.index(4);
    SimConfig {
        protocol,
        t_switch,
        p_switch,
        heterogeneity,
        seed,
        dup_prob,
        n_mhs,
        n_mss,
        horizon: 400.0,
        record_trace: true,
        ..Default::default()
    }
}

/// Structural invariants of every run.
#[test]
fn run_invariants() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x51A1_0001 ^ case);
        let cfg = gen_config(&mut gen);
        let n = cfg.n_mhs;
        let r = Simulation::run(cfg.clone());
        // Conservation and consistency of counters.
        assert_eq!(r.per_mh_ckpts.iter().sum::<u64>(), r.n_tot());
        assert_eq!(r.ckpts.cell_switch, r.handoffs);
        assert_eq!(r.ckpts.disconnect, r.disconnects);
        assert!(r.reconnects <= r.disconnects);
        assert!(r.msgs_delivered <= r.msgs_sent);
        assert!(r.net.duplicates_suppressed <= r.net.duplicates_injected);
        assert_eq!(r.net.app_msgs_sent, r.msgs_sent);
        assert_eq!(r.net.app_msgs_delivered, r.msgs_delivered);
        assert_eq!(r.per_mh_ckpts.len(), n);
        // The trace agrees with the counters.
        let trace = r.trace.as_ref().expect("trace recorded");
        assert_eq!(trace.total_checkpoints() as u64, r.n_tot());
        assert_eq!(trace.messages().len() as u64, r.msgs_sent);
        // Replacements only ever come from QBC.
        if !matches!(cfg.protocol, ProtocolChoice::Cic(CicKind::Qbc)) {
            assert_eq!(r.replacements, 0);
        }
    }
}

/// Determinism: the same config yields the identical run.
#[test]
fn determinism() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x51A1_0002 ^ case);
        let cfg = gen_config(&mut gen);
        let a = Simulation::run(cfg.clone());
        let b = Simulation::run(cfg);
        assert_eq!(a.n_tot(), b.n_tot());
        assert_eq!(a.events, b.events);
        assert_eq!(a.msgs_sent, b.msgs_sent);
        assert_eq!(a.per_mh_ckpts, b.per_mh_ckpts);
        assert_eq!(a.net.wireless_transmissions, b.net.wireless_transmissions);
        assert_eq!(a.net.piggyback_bytes, b.net.piggyback_bytes);
    }
}

/// Index-protocol safety on arbitrary configurations: every same-index
/// recovery line of a BCS/QBC run is consistent, even with duplicated
/// deliveries, heterogeneity and arbitrary system sizes.
#[test]
fn index_lines_consistent_everywhere() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x51A1_0003 ^ case);
        let mut cfg = gen_config(&mut gen);
        let qbc = gen.bernoulli(0.5);
        cfg.protocol = ProtocolChoice::Cic(if qbc { CicKind::Qbc } else { CicKind::Bcs });
        let r = Simulation::run(cfg);
        let trace = r.trace.as_ref().expect("trace recorded");
        for (k, line) in all_index_lines(trace) {
            assert!(
                is_consistent(trace, &line),
                "line {k} inconsistent (protocol {})",
                r.protocol
            );
        }
    }
}

/// Recovery lines after any single failure are consistent and dominated by
/// the volatile frontier, for every protocol.
#[test]
fn failure_recovery_consistent_everywhere() {
    for case in 0..CASES {
        let mut gen = SimRng::new(0x51A1_0004 ^ case);
        let cfg = gen_config(&mut gen);
        let failed_sel = gen.index(12);
        let n = cfg.n_mhs;
        let r = Simulation::run(cfg);
        let trace = r.trace.as_ref().expect("trace recorded");
        let failed = causality::trace::ProcId(failed_sel % n);
        let line = causality::recovery::recovery_line_after_failure(trace, &[failed]);
        assert!(is_consistent(trace, &line));
        let cost = causality::recovery::rollback_cost(trace, &line, r.end_time);
        assert!(cost.total_time_undone() >= 0.0);
        assert!(cost.time_undone[failed.idx()] <= r.end_time + 1e-9);
    }
}
