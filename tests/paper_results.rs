//! The paper's comparative results, checked qualitatively.
//!
//! Absolute numbers depend on the substrate, but the *shape* of the results
//! must hold: who wins, in which environments, and how the curves move with
//! `T_switch`. These tests use reduced horizons/replications so the full
//! suite stays fast; the bench harness (`cargo run -p mck-bench --bin
//! figures`) reproduces the full-scale figures.

use mck::prelude::*;

fn n_tot_mean(kind: CicKind, t_switch: f64, p_switch: f64, h: f64, horizon: f64) -> f64 {
    let cfg = SimConfig {
        protocol: ProtocolChoice::Cic(kind),
        t_switch,
        p_switch,
        heterogeneity: h,
        horizon,
        ..Default::default()
    };
    let s = summarize_point(&cfg, 21, 3);
    s.n_tot.mean
}

#[test]
fn index_protocols_beat_tp_everywhere() {
    // Figures 1-6: TP is worst at every sweep point.
    for &(p_switch, h) in &[(1.0, 0.0), (0.8, 0.0), (0.8, 0.3)] {
        for &t in &[100.0, 1000.0] {
            let tp = n_tot_mean(CicKind::Tp, t, p_switch, h, 2000.0);
            let bcs = n_tot_mean(CicKind::Bcs, t, p_switch, h, 2000.0);
            let qbc = n_tot_mean(CicKind::Qbc, t, p_switch, h, 2000.0);
            assert!(
                tp > bcs && tp > qbc,
                "TP={tp} must exceed BCS={bcs} and QBC={qbc} at T={t}, P={p_switch}, H={h}"
            );
        }
    }
}

#[test]
fn qbc_never_worse_than_bcs_in_aggregate() {
    // QBC <= BCS on every paper configuration (statistically; the paper
    // reports gains of 0-23%).
    for &(p_switch, h) in &[(1.0, 0.0), (0.8, 0.0), (1.0, 0.3), (0.8, 0.3)] {
        for &t in &[100.0, 500.0] {
            let bcs = n_tot_mean(CicKind::Bcs, t, p_switch, h, 2000.0);
            let qbc = n_tot_mean(CicKind::Qbc, t, p_switch, h, 2000.0);
            assert!(
                qbc <= bcs * 1.02, // tiny tolerance for stochastic noise
                "QBC={qbc} should not exceed BCS={bcs} at T={t}, P={p_switch}, H={h}"
            );
        }
    }
}

#[test]
fn tp_gain_grows_with_t_switch() {
    // Fig 1: the index protocols' advantage over TP grows as mobility slows
    // (TP's forced checkpoints depend on traffic, not mobility).
    let gain = |t: f64| {
        let tp = n_tot_mean(CicKind::Tp, t, 1.0, 0.0, 3000.0);
        let bcs = n_tot_mean(CicKind::Bcs, t, 1.0, 0.0, 3000.0);
        (tp - bcs) / tp
    };
    let g_small = gain(100.0);
    let g_large = gain(3000.0);
    assert!(
        g_large > g_small,
        "gain should grow with T_switch: {g_small:.2} -> {g_large:.2}"
    );
    assert!(g_large > 0.9, "large-T gain should reach ~90%+: {g_large:.2}");
}

#[test]
fn index_protocol_checkpoints_decrease_with_t_switch() {
    // Figs 1-2: BCS/QBC N_tot falls monotonically in T_switch.
    for kind in [CicKind::Bcs, CicKind::Qbc] {
        let a = n_tot_mean(kind, 100.0, 1.0, 0.0, 3000.0);
        let b = n_tot_mean(kind, 1000.0, 1.0, 0.0, 3000.0);
        let c = n_tot_mean(kind, 3000.0, 1.0, 0.0, 3000.0);
        assert!(a > b && b > c, "{kind}: expected decreasing series, got {a}, {b}, {c}");
    }
}

#[test]
fn qbc_gain_materializes_with_disconnections() {
    // Fig 2 claim: QBC's gain over BCS appears in disconnecting
    // environments (up to ~15%); at fast mobility the effect is strongest.
    let bcs = n_tot_mean(CicKind::Bcs, 100.0, 0.8, 0.0, 4000.0);
    let qbc = n_tot_mean(CicKind::Qbc, 100.0, 0.8, 0.0, 4000.0);
    let gain = (bcs - qbc) / bcs;
    assert!(
        gain > 0.05,
        "expected a material QBC gain with disconnections, got {:.1}%",
        gain * 100.0
    );
}

#[test]
fn heterogeneity_amplifies_qbc_gain() {
    // Figs 3-6 claim: heterogeneous environments push BCS sequence numbers
    // apart, amplifying QBC's advantage relative to the homogeneous case.
    let gain_at = |h: f64| {
        let bcs = n_tot_mean(CicKind::Bcs, 1000.0, 0.8, h, 4000.0);
        let qbc = n_tot_mean(CicKind::Qbc, 1000.0, 0.8, h, 4000.0);
        (bcs - qbc) / bcs
    };
    let homo = gain_at(0.0);
    let hetero = gain_at(0.3);
    assert!(
        hetero >= homo - 0.01,
        "heterogeneity should not shrink the QBC gain: H=0 {:.3} vs H=30% {:.3}",
        homo,
        hetero
    );
    assert!(hetero > 0.03, "expected a visible QBC gain at H=30%: {hetero:.3}");
}

#[test]
fn basic_checkpoints_scale_with_mobility() {
    // More switching ⇒ more basic checkpoints, independent of protocol.
    let fast = SimConfig {
        protocol: ProtocolChoice::Cic(CicKind::Bcs),
        t_switch: 100.0,
        horizon: 2000.0,
        ..Default::default()
    };
    let slow = SimConfig {
        t_switch: 1000.0,
        ..fast.clone()
    };
    let f = Simulation::run(fast);
    let s = Simulation::run(slow);
    assert!(
        f.ckpts.basic() > 3 * s.ckpts.basic(),
        "10x mobility should multiply basic checkpoints: {} vs {}",
        f.ckpts.basic(),
        s.ckpts.basic()
    );
}

#[test]
fn figure_pipeline_end_to_end() {
    // A miniature figure run through the real experiment pipeline.
    let mut spec = mck::experiments::figure(2);
    spec.t_switch_values = vec![100.0, 1000.0];
    let res = mck::experiments::run_figure(&spec, 31, 2);
    assert_eq!(res.points.len(), 2);
    // TP worst at both points.
    for p in &res.points {
        let tp = p.of("TP").unwrap().mean;
        let bcs = p.of("BCS").unwrap().mean;
        let qbc = p.of("QBC").unwrap().mean;
        assert!(tp > bcs && tp > qbc);
    }
    let table = res.table();
    assert_eq!(table.len(), 2);
    assert!(res.max_gain("BCS", "TP") > 0.5);
}
