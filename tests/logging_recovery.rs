//! End-to-end: pessimistic MSS message logging and replay-based recovery
//! on real simulated trajectories.
//!
//! These tests drive the full stack — simulation with `LoggingMode::
//! Pessimistic`, the `relog` replay planner over the recorded trace and the
//! surviving (post-GC) log — and check the headline claims: replay recovery
//! never loses to checkpoint-only recovery on the same seeds, a complete
//! pessimistic log undoes nothing at all, logging never perturbs a
//! trajectory, and the whole pipeline is deterministic.

use causality::cut::is_consistent;
use mck::failure::rollback_logging_summary;
use mck::prelude::*;
use relog::ReplayPlan;

fn cfg(kind: CicKind) -> SimConfig {
    SimConfig {
        protocol: ProtocolChoice::Cic(kind),
        horizon: 300.0,
        t_switch: 60.0,
        p_switch: 0.9,
        record_trace: true,
        logging: LoggingMode::Pessimistic,
        seed: 11,
        ..Default::default()
    }
}

/// For every protocol the paper studies (plus the uncoordinated baseline):
/// mean undone work under replay recovery never exceeds the checkpoint-only
/// figure from the same seeds, and with complete pessimistic logging it is
/// exactly zero — the cost moves into replayed work and log storage.
#[test]
fn replay_recovery_never_loses_to_checkpoint_only() {
    for kind in [
        CicKind::Tp,
        CicKind::Bcs,
        CicKind::Qbc,
        CicKind::Uncoordinated,
    ] {
        let s = rollback_logging_summary(&cfg(kind), 11, 2);
        assert_eq!(s.scenarios, 2 * 10, "{}", s.protocol);
        assert!(
            s.mean_undone_logged <= s.mean_undone_off + 1e-9,
            "{}: logged recovery undid {} > {}",
            s.protocol,
            s.mean_undone_logged,
            s.mean_undone_off
        );
        assert_eq!(s.mean_undone_logged, 0.0, "{}", s.protocol);
        assert!(s.mean_replayed_time > 0.0, "{}", s.protocol);
        assert!(s.mean_log_peak_bytes > 0.0, "{}", s.protocol);
    }
}

/// The log a real run leaves behind satisfies the replay invariants for
/// every possible failed host: the plan verifies (frontier never crosses an
/// unlogged receive, no orphans), its conservative checkpoint projection is
/// consistent, and nothing is undone.
#[test]
fn sim_produced_log_satisfies_replay_invariants() {
    let report = Simulation::run(cfg(CicKind::Qbc));
    let trace = report.trace.as_ref().unwrap();
    let log = report.message_log.as_ref().unwrap();
    for failed in trace.procs() {
        let plan = ReplayPlan::for_failure(trace, log, &[failed], report.end_time);
        plan.verify(trace, log)
            .unwrap_or_else(|e| panic!("failed {failed}: {e}"));
        assert!(is_consistent(trace, &plan.conservative_line(trace)));
        assert_eq!(plan.total_undone_time(), 0.0);
        assert_eq!(plan.frontier(failed), f64::INFINITY);
    }
}

/// Checkpoint-driven GC actually reclaims log space during a run, and what
/// survives is exactly the suffix of each host's deliveries since its last
/// stable checkpoint.
#[test]
fn gc_keeps_only_the_replayable_suffix() {
    let report = Simulation::run(cfg(CicKind::Bcs));
    let trace = report.trace.as_ref().unwrap();
    let log = report.message_log.as_ref().unwrap();
    let stats = report.log_stats.unwrap();
    assert!(stats.gc_entries > 0, "GC never fired: {stats:?}");
    assert!(stats.live_bytes < stats.stable_write_bytes);
    for p in trace.procs() {
        let last_ckpt = trace.checkpoints(p).last().unwrap().time;
        for e in log.entries(p) {
            assert!(
                e.recv_time >= last_ckpt,
                "{p}: entry at {} predates its last checkpoint at {last_ckpt}",
                e.recv_time
            );
        }
    }
}

/// Two runs of the same seed produce byte-identical logs and accounting,
/// and a logged run's trajectory matches the logging-off run exactly.
#[test]
fn logging_is_deterministic_and_invisible_to_the_trajectory() {
    let a = Simulation::run(cfg(CicKind::Tp));
    let b = Simulation::run(cfg(CicKind::Tp));
    assert_eq!(a.log_stats, b.log_stats);
    let (la, lb) = (a.message_log.as_ref().unwrap(), b.message_log.as_ref().unwrap());
    for p in a.trace.as_ref().unwrap().procs() {
        assert_eq!(la.entries(p), lb.entries(p), "{p} log differs across runs");
    }

    let mut off_cfg = cfg(CicKind::Tp);
    off_cfg.logging = LoggingMode::Off;
    let off = Simulation::run(off_cfg);
    assert!(off.message_log.is_none() && off.log_stats.is_none());
    assert_eq!(off.events, a.events);
    assert_eq!(off.n_tot(), a.n_tot());
    assert_eq!(off.msgs_delivered, a.msgs_delivered);
    assert_eq!(off.per_mh_ckpts, a.per_mh_ckpts);
    let (ta, to) = (a.trace.as_ref().unwrap(), off.trace.as_ref().unwrap());
    for p in ta.procs() {
        assert_eq!(ta.checkpoints(p), to.checkpoints(p), "{p} trace differs");
    }
    assert_eq!(ta.messages(), to.messages());
}
