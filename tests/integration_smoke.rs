//! End-to-end smoke tests of the composed simulator.

use mck::prelude::*;

fn base_cfg(kind: CicKind) -> SimConfig {
    SimConfig {
        protocol: ProtocolChoice::Cic(kind),
        t_switch: 200.0,
        p_switch: 0.8,
        horizon: 1000.0,
        seed: 9,
        ..Default::default()
    }
}

#[test]
fn every_protocol_runs_to_horizon() {
    for kind in CicKind::ALL {
        let r = Simulation::run(base_cfg(kind));
        assert!(r.end_time <= 1000.0);
        assert!(r.events > 1000, "{kind}: suspiciously few events");
        assert!(r.n_tot() > 0, "{kind}: no checkpoints at all");
        assert!(r.msgs_sent > 0 && r.msgs_delivered > 0, "{kind}: no traffic");
        assert!(r.handoffs > 0, "{kind}: nobody moved");
        assert_eq!(r.per_mh_ckpts.len(), 10);
        assert_eq!(r.per_mh_ckpts.iter().sum::<u64>(), r.n_tot());
    }
}

#[test]
fn runs_are_deterministic_per_seed() {
    let a = Simulation::run(base_cfg(CicKind::Qbc));
    let b = Simulation::run(base_cfg(CicKind::Qbc));
    assert_eq!(a.n_tot(), b.n_tot());
    assert_eq!(a.msgs_sent, b.msgs_sent);
    assert_eq!(a.events, b.events);
    assert_eq!(a.per_mh_ckpts, b.per_mh_ckpts);
    assert_eq!(a.net.wireless_transmissions, b.net.wireless_transmissions);

    let mut cfg = base_cfg(CicKind::Qbc);
    cfg.seed = 10;
    let c = Simulation::run(cfg);
    assert!(
        c.events != a.events || c.n_tot() != a.n_tot(),
        "different seeds should diverge"
    );
}

#[test]
fn disconnections_only_when_p_switch_below_one() {
    let mut cfg = base_cfg(CicKind::Bcs);
    cfg.p_switch = 1.0;
    let r = Simulation::run(cfg);
    assert_eq!(r.disconnects, 0);
    assert_eq!(r.ckpts.disconnect, 0);

    let mut cfg = base_cfg(CicKind::Bcs);
    cfg.p_switch = 0.5;
    cfg.horizon = 2000.0;
    let r = Simulation::run(cfg);
    assert!(r.disconnects > 0, "P_switch=0.5 must disconnect sometimes");
    assert!(r.reconnects <= r.disconnects);
    assert_eq!(r.ckpts.disconnect, r.disconnects);
}

#[test]
fn handoffs_match_cell_switch_checkpoints() {
    let r = Simulation::run(base_cfg(CicKind::Qbc));
    assert_eq!(r.ckpts.cell_switch, r.handoffs);
}

#[test]
fn messages_are_conserved() {
    let r = Simulation::run(base_cfg(CicKind::Bcs));
    // Deliveries never exceed sends; with a receive-capable workload most
    // messages get through within the horizon.
    assert!(r.msgs_delivered <= r.msgs_sent);
    assert!(
        r.msgs_delivered as f64 >= 0.5 * r.msgs_sent as f64,
        "{} of {} delivered",
        r.msgs_delivered,
        r.msgs_sent
    );
}

#[test]
fn piggyback_overhead_ranks_tp_highest() {
    let tp = Simulation::run(base_cfg(CicKind::Tp));
    let bcs = Simulation::run(base_cfg(CicKind::Bcs));
    let un = Simulation::run(base_cfg(CicKind::Uncoordinated));
    // Per sent message: TP = 2n ints (80 B at n=10), BCS = 1 int, UNCOORD = 0.
    let per_sent = |r: &mck::report::RunReport| r.net.piggyback_bytes as f64 / r.msgs_sent as f64;
    assert!(per_sent(&tp) > per_sent(&bcs));
    assert_eq!(un.net.piggyback_bytes, 0);
    assert!((per_sent(&tp) - 80.0).abs() < 1e-9);
    assert!((per_sent(&bcs) - 4.0).abs() < 1e-9);
}

#[test]
fn at_least_once_duplicates_are_invisible_to_the_application() {
    let mut with_dups = base_cfg(CicKind::Qbc);
    with_dups.dup_prob = 0.3;
    let r = Simulation::run(with_dups);
    assert!(r.net.duplicates_injected > 0, "dup_prob=0.3 must duplicate");
    assert!(r.net.duplicates_suppressed <= r.net.duplicates_injected);
    // Deliveries never exceed unique sends.
    assert!(r.msgs_delivered <= r.msgs_sent);
}

#[test]
fn checkpoint_storage_accounts_every_checkpoint() {
    let r = Simulation::run(base_cfg(CicKind::Bcs));
    // Every checkpoint shipped bytes to stable storage.
    assert!(r.net.ckpt_wireless_bytes > 0);
    // Cell switches force cross-MSS base fetches eventually.
    assert!(r.net.ckpt_fetch_bytes > 0);
}

#[test]
fn energy_ledger_is_populated() {
    let r = Simulation::run(base_cfg(CicKind::Qbc));
    let total = r.net.total_energy(Default::default());
    assert!(total > 0.0);
    for i in 0..10 {
        assert!(r.net.per_mh_wireless[i] > 0, "host {i} never transmitted");
    }
}

#[test]
fn trace_recording_matches_counters() {
    let mut cfg = base_cfg(CicKind::Qbc);
    cfg.record_trace = true;
    let r = Simulation::run(cfg);
    let trace = r.trace.as_ref().expect("trace requested");
    assert_eq!(trace.total_checkpoints() as u64, r.n_tot());
    let delivered = trace.messages().iter().filter(|m| m.delivered()).count();
    assert_eq!(delivered as u64, r.msgs_delivered);
    assert_eq!(trace.messages().len() as u64, r.msgs_sent);
}

#[test]
fn checkpoint_duration_slows_but_does_not_change_shape() {
    // The paper: a non-negligible checkpoint time has no remarkable impact
    // on the number of checkpoints.
    let fast = Simulation::run(base_cfg(CicKind::Bcs));
    let mut cfg = base_cfg(CicKind::Bcs);
    cfg.ckpt_duration = 0.5;
    let slow = Simulation::run(cfg);
    let (a, b) = (fast.n_tot() as f64, slow.n_tot() as f64);
    assert!(
        (a - b).abs() / a < 0.25,
        "ckpt duration changed N_tot too much: {a} vs {b}"
    );
}

#[test]
fn channel_contention_slows_but_preserves_guarantees() {
    // Pure-latency model: no utilization reported.
    let free = Simulation::run(base_cfg(CicKind::Bcs));
    assert_eq!(free.channel_utilization, 0.0);
    assert_eq!(free.channel_queueing_delay, 0.0);

    // Finite bandwidth: channels are occupied and queueing appears.
    let mut cfg = base_cfg(CicKind::Bcs);
    cfg.wireless_bandwidth = 20_000.0;
    let tight = Simulation::run(cfg);
    assert!(tight.channel_utilization > 0.0);
    assert!(tight.channel_utilization <= 1.0);
    assert!(tight.channel_queueing_delay > 0.0);
    // Messages still flow and checkpoints still happen.
    assert!(tight.msgs_delivered > 0);
    assert!(tight.n_tot() > 0);
}

#[test]
fn tp_contends_for_the_channel_more_than_index_protocols() {
    let run = |kind| {
        let mut cfg = base_cfg(kind);
        cfg.wireless_bandwidth = 20_000.0;
        cfg.horizon = 2000.0;
        Simulation::run(cfg)
    };
    let tp = run(CicKind::Tp);
    let qbc = run(CicKind::Qbc);
    assert!(
        tp.channel_utilization > qbc.channel_utilization,
        "TP util {} should exceed QBC util {}",
        tp.channel_utilization,
        qbc.channel_utilization
    );
}

#[test]
fn event_log_records_checkpoints_and_mobility() {
    let mut cfg = base_cfg(CicKind::Qbc);
    cfg.log_capacity = 50_000;
    let r = Simulation::run(cfg);
    assert!(!r.log.is_empty());
    // Every checkpoint produced one log line; the ring was big enough.
    assert_eq!(r.log.with_tag("ckpt").count() as u64, r.n_tot());
    assert_eq!(
        r.log.with_tag("mobility").count() as u64,
        r.handoffs + r.disconnects
    );
    // Timestamps are non-decreasing.
    let times: Vec<f64> = r.log.entries().map(|e| e.time.as_f64()).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]));
    // Disabled by default.
    let silent = Simulation::run(base_cfg(CicKind::Qbc));
    assert!(silent.log.is_empty());
}
