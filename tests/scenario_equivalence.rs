//! Scenario-subsystem equivalence and determinism guarantees.
//!
//! The refactor that introduced pluggable mobility/traffic/topology models
//! must not change the simulation: the paper scenario applied to a default
//! config is a no-op (byte-identical artifacts per seed and protocol), and
//! every bundled non-paper scenario runs end-to-end deterministically.

use mck::artifact::{run_artifact, validate, RUN_SCHEMA};
use mck::prelude::*;
use simkit::rng::SimRng;

/// Path to a bundled scenario file (the suite crate lives two levels below
/// the workspace root).
fn bundled(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .join(name)
}

fn load(name: &str) -> Scenario {
    Scenario::load(&bundled(name)).unwrap_or_else(|e| panic!("{name}: {e}"))
}

/// One run's full observable surface as a string: the `mck.run/v1`
/// artifact (config, outcome, metric snapshot).
fn artifact_bytes(cfg: &SimConfig) -> String {
    let report = Simulation::run_with(
        cfg.clone(),
        Instrumentation {
            metrics: true,
            ..Instrumentation::off()
        },
    );
    run_artifact(cfg, &report).to_pretty()
}

#[test]
fn paper_scenario_is_byte_identical_to_the_default_path() {
    let sc = load("paper.json");
    let mut seeder = SimRng::new(0xfeed);
    let protocols = [CicKind::Tp, CicKind::Bcs, CicKind::Qbc];
    for round in 0..4 {
        let seed = seeder.next_u64();
        let proto = protocols[round % protocols.len()];
        let mut plain = SimConfig::paper(ProtocolChoice::Cic(proto), 500.0, 0.8, 0.3);
        plain.horizon = 1500.0;
        plain.seed = seed;
        let mut scenic = plain.clone();
        scenic.apply_scenario(&sc);
        // The scenario spells out the paper environment explicitly, so it
        // must leave the config — and therefore the run — untouched.
        assert_eq!(
            artifact_bytes(&plain),
            artifact_bytes(&scenic),
            "paper scenario changed the run (seed={seed}, proto={})",
            proto.name(),
        );
    }
}

#[test]
fn scenario_overrides_compose_with_later_flags() {
    let sc = load("markov_grid.json");
    let mut cfg = SimConfig::default();
    cfg.apply_scenario(&sc);
    assert_eq!(cfg.n_mss, 6, "markov_grid sets n_mss via params");
    assert!(matches!(cfg.env.topology, TopologySpec::Grid { cols: 3 }));
    assert!(matches!(cfg.env.mobility, MobilitySpec::Markov { .. }));
    // Flag-style assignments after the scenario win without clearing the
    // environment.
    cfg.t_switch = 250.0;
    cfg.check().expect("scenario plus overrides is valid");
    assert!(matches!(cfg.env.mobility, MobilitySpec::Markov { .. }));
}

#[test]
fn bundled_scenarios_run_deterministically_end_to_end() {
    for name in [
        "markov_grid.json",
        "hotspot.json",
        "client_server.json",
        "trace_commuters.json",
    ] {
        let sc = load(name);
        let mut cfg = SimConfig::default();
        cfg.apply_scenario(&sc);
        cfg.horizon = 1500.0;
        cfg.t_switch = 300.0;
        cfg.seed = 42;
        cfg.check().unwrap_or_else(|e| panic!("{name}: {e}"));
        let a = artifact_bytes(&cfg);
        let b = artifact_bytes(&cfg);
        assert_eq!(a, b, "{name} must be deterministic per seed");
        let parsed = simkit::json::parse(&a).unwrap();
        assert_eq!(validate(&parsed).unwrap(), RUN_SCHEMA);
        let report = Simulation::run(cfg.clone());
        assert!(report.n_tot() > 0, "{name} took no checkpoints");
        assert!(report.handoffs > 0, "{name} saw no hand-offs");
        assert!(report.msgs_delivered > 0, "{name} delivered no messages");
    }
}

#[test]
fn markov_mobility_disconnects_and_differs_from_paper() {
    let sc = load("markov_grid.json");
    let mut markov = SimConfig::default();
    markov.apply_scenario(&sc);
    markov.horizon = 1500.0;
    markov.seed = 7;
    let markov_report = Simulation::run(markov.clone());
    // p_disconnect = 0.2 must actually produce disconnections.
    assert!(markov_report.disconnects > 0);

    // Same scalars, paper environment: a genuinely different trajectory.
    let mut paper = markov.clone();
    paper.env = EnvSpec::default();
    let paper_report = Simulation::run(paper);
    assert!(
        markov_report.handoffs != paper_report.handoffs
            || markov_report.n_tot() != paper_report.n_tot(),
        "markov mobility should not reproduce the paper trajectory"
    );
}

#[test]
fn scenario_sweeps_emit_valid_sweep_artifacts() {
    use mck::artifact::{sweep_artifact, SWEEP_SCHEMA};
    use mck::experiments::run_sweep;
    for name in ["markov_grid.json", "hotspot.json"] {
        let sc = load(name);
        let mut cfg = SimConfig::default();
        cfg.apply_scenario(&sc);
        cfg.horizon = 1200.0;
        cfg.protocol = ProtocolChoice::Cic(CicKind::Qbc);
        let points = run_sweep(&cfg, &[200.0, 500.0], 3, 2);
        assert_eq!(points.len(), 2);
        for (_, s) in &points {
            assert!(s.n_tot.mean > 0.0, "{name}: empty sweep point");
        }
        let art = sweep_artifact(&cfg, 3, 2, &points, None);
        assert_eq!(validate(&art).unwrap(), SWEEP_SCHEMA);
        let text = art.to_pretty();
        // The artifact records which environment produced it.
        assert!(text.contains("\"topology\""), "{name}: {text}");
    }
}
