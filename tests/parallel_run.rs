//! End-to-end behavior of the parallel backend: hosts migrating across
//! partition boundaries mid-run, disconnect/reconnect cycles landing in
//! foreign partitions, and the serial fallback for crash/recovery runs.

use mck::artifact::run_artifact;
use mck::prelude::*;
use pardes as par;

fn fingerprint(cfg: &SimConfig, r: &RunReport) -> String {
    run_artifact(cfg, r).to_pretty()
}

#[test]
fn hosts_migrate_across_partition_boundaries() {
    // Two partitions over four cells (partition = cell % 2): with the
    // complete-graph topology every hand-off has a 2-in-3 chance of
    // crossing the boundary, so a mobile run exercises the migration
    // protocol constantly. Parity with the serial run proves the hand-over
    // carries every byte of host state (protocol, RNGs, mailbox, storage).
    let cfg = SimConfig {
        n_mhs: 16,
        n_mss: 4,
        t_switch: 30.0, // fast roaming: many hand-offs per run
        p_switch: 0.8,  // and some disconnections too
        reconnect_mean: 40.0,
        horizon: 600.0,
        seed: 42,
        ..Default::default()
    };
    let serial = Simulation::run(cfg.clone());
    let parallel = par::run(cfg.clone(), 2, Instrumentation::off());
    assert!(serial.handoffs > 50, "test premise: the run must roam (got {})", serial.handoffs);
    assert!(serial.disconnects > 0, "test premise: the run must disconnect");
    assert_eq!(fingerprint(&cfg, &serial), fingerprint(&cfg, &parallel));
}

#[test]
fn worker_counts_beyond_cells_are_clamped() {
    let cfg = SimConfig {
        n_mhs: 10,
        n_mss: 3,
        t_switch: 100.0,
        horizon: 400.0,
        seed: 9,
        ..Default::default()
    };
    let serial = Simulation::run(cfg.clone());
    // 64 workers over 3 cells: clamped to 3 partitions, still exact.
    let parallel = par::run(cfg.clone(), 64, Instrumentation::off());
    assert_eq!(fingerprint(&cfg, &serial), fingerprint(&cfg, &parallel));
}

#[test]
fn crash_recovery_runs_fall_back_and_still_recover() {
    // Failure injection needs the global causality trace, so it is outside
    // the parallel gate; `pardes::run` must transparently produce the
    // serial trajectory, recovery stats included.
    let cfg = SimConfig {
        n_mhs: 8,
        n_mss: 4,
        t_switch: 100.0,
        fail_mtbf: 300.0,
        horizon: 1_500.0,
        seed: 3,
        ..Default::default()
    };
    assert!(!Simulation::parallel_compatible(&cfg));
    let serial = Simulation::run(cfg.clone());
    let parallel = par::run(cfg.clone(), 4, Instrumentation::off());
    let stats = parallel.recovery.expect("failure injection reports recovery stats");
    assert!(stats.mh_crashes > 0, "test premise: crashes must occur");
    assert_eq!(
        serial.recovery.expect("serial reports too").mh_crashes,
        stats.mh_crashes
    );
    assert_eq!(fingerprint(&cfg, &serial), fingerprint(&cfg, &parallel));
}

#[test]
fn profile_and_spans_overlay_does_not_perturb_the_run() {
    // Observability is a pure overlay in the parallel backend too: the
    // deterministic artifact with spans+profile attached matches the bare
    // parallel run, and the span tree attributes per-worker barrier wait.
    let cfg = SimConfig {
        n_mhs: 24,
        n_mss: 6,
        t_switch: 80.0,
        horizon: 400.0,
        seed: 17,
        ..Default::default()
    };
    let bare = par::run(cfg.clone(), 3, Instrumentation::off());
    let mut instr = Instrumentation::off();
    instr.profile = true;
    instr.spans = true;
    let observed = par::run(cfg.clone(), 3, instr);
    assert_eq!(fingerprint(&cfg, &bare), fingerprint(&cfg, &observed));
    let spans = observed.spans.expect("spans requested");
    let paths: Vec<&str> = spans.rows.iter().map(|r| r.path.as_str()).collect();
    assert!(
        paths.iter().any(|p| p.starts_with("worker0")),
        "per-worker spans present: {paths:?}"
    );
    assert!(
        paths.iter().any(|p| p.ends_with("barrier_wait")),
        "barrier wait attributed: {paths:?}"
    );
    let profile = observed.profile.expect("profile requested");
    assert_eq!(profile.events_handled, bare.events);
    assert!(profile.wall_ns > 0);
}
