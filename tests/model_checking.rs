//! End-to-end checks of the exhaustive model-checking mode (`crates/mcheck`).
//!
//! Three properties anchor the checker's trustworthiness:
//!
//! 1. **Refinement** — the seeded simulator's `run_until` loop is exactly
//!    the schedule that always takes the earliest enabled choice, so the
//!    checker explores a superset of what every seeded run executes
//!    (`earliest_choice_stream_matches_run_until`).
//! 2. **Soundness of the model** — all CIC protocols check clean over
//!    *every* schedule of a tiny world, not just the seeded one.
//! 3. **Sensitivity** — a planted forced-checkpoint bug is caught, its
//!    counterexample is minimal-depth, and the recorded schedule replays
//!    deterministically to the same violation.

use cic::CicKind;
use mcheck::CheckConfig;
use mck::simulation::Simulation;
use simkit::driver::run_until;
use simkit::time::SimTime;

/// The seeded event loop is the always-take-the-earliest-choice schedule:
/// driving a cloned world by `enabled_choices()[0]` reproduces `run_until`
/// exactly, fingerprint for fingerprint, step for step. This is the
/// refinement property that makes the checker's verdicts meaningful for
/// the seeded runs — the one schedule every experiment executes is inside
/// the explored set.
#[test]
fn earliest_choice_stream_matches_run_until() {
    let cfg = CheckConfig {
        protocol: CicKind::Tp,
        horizon: 4.0,
        ..CheckConfig::default()
    };
    let horizon = SimTime::new(cfg.horizon);

    let (mut seeded, mut seeded_sched) = Simulation::new(cfg.sim_config());
    let (mut chosen, mut chosen_sched) = (seeded.clone(), seeded_sched.clone());

    let mut steps = 0u64;
    loop {
        let choices = Simulation::enabled_choices(&chosen_sched, horizon);
        let Some(first) = choices.first() else { break };
        // `enabled_choices` sorts by (time, seq): index 0 is exactly the
        // event `run_until` would pop next.
        chosen.apply_choice(&mut chosen_sched, first.seq);
        steps += 1;
    }
    let outcome = run_until(&mut seeded, &mut seeded_sched, horizon);

    assert!(steps > 20, "world too trivial to pin anything ({steps} steps)");
    assert_eq!(outcome.events_handled, steps);
    assert_eq!(
        seeded.fingerprint(&seeded_sched),
        chosen.fingerprint(&chosen_sched),
        "earliest-choice schedule diverged from the seeded loop"
    );
    // The recorded histories agree too, not just the live abstraction.
    let (a, b) = (seeded.trace_snapshot().unwrap(), chosen.trace_snapshot().unwrap());
    assert_eq!(a.n_procs(), b.n_procs());
    for p in a.procs() {
        assert_eq!(a.checkpoints(p).len(), b.checkpoints(p).len());
    }
    assert_eq!(a.messages().len(), b.messages().len());
}

/// Every CIC protocol holds its safety invariants on *all* schedules of the
/// 2 MH x 2 MSS world — the space `mck check` covers by default, shrunk to
/// horizon 2 to keep the suite fast (hundreds of states per protocol).
#[test]
fn all_protocols_check_clean_on_every_schedule() {
    for protocol in [CicKind::Bcs, CicKind::Qbc, CicKind::Tp, CicKind::Uncoordinated] {
        let out = mcheck::check(&CheckConfig {
            protocol,
            horizon: 2.0,
            ..CheckConfig::default()
        });
        assert!(out.complete, "{protocol:?}: budget exhausted: {out:?}");
        assert!(
            out.counterexample.is_none(),
            "{protocol:?} violated safety: {:?}",
            out.counterexample
        );
        assert!(out.states_explored > 100, "{protocol:?}: space too small: {out:?}");
    }
}

/// The planted forced-checkpoint bug is caught, with a minimal and
/// deterministically replayable counterexample — the checker's invariants
/// demonstrably bite.
#[test]
fn planted_bug_is_caught_minimized_and_replayed() {
    let cfg = CheckConfig {
        protocol: CicKind::Bcs,
        mutate: true,
        ..CheckConfig::default()
    };
    let out = mcheck::check(&cfg);
    let cx = out.counterexample.expect("planted bug must be caught");
    assert_eq!(cx.violation.kind(), "inconsistent_index_line");

    let indices = cx.schedule.indices();
    // BFS minimality: no strict prefix of the schedule already violates.
    for cut in 0..indices.len() {
        assert!(
            mcheck::replay(&cfg, &indices[..cut]).violation.is_none(),
            "a shorter schedule already violates — counterexample not minimal"
        );
    }
    let replayed = mcheck::replay(&cfg, &indices);
    assert_eq!(replayed.violation, Some(cx.violation));
    assert_eq!(replayed.schedule, cx.schedule);
}
