//! End-to-end determinism of the parallel sweep executor and the pluggable
//! pending-event set: the same seeds must produce byte-identical results
//! regardless of the worker count (`--jobs`) or the queue backend.

use mck::artifact::run_artifact;
use mck::prelude::*;
use simkit::event::QueueBackend;

fn base_cfg() -> SimConfig {
    SimConfig {
        protocol: ProtocolChoice::Cic(CicKind::Qbc),
        t_switch: 200.0,
        horizon: 800.0,
        ..Default::default()
    }
}

/// Serializes a report (config + outcome + metrics) so "identical" means
/// every field the simulator can observe, not a cherry-picked subset.
fn fingerprint(cfg: &SimConfig, r: &RunReport) -> String {
    run_artifact(cfg, r).to_pretty()
}

#[test]
fn jobs_one_and_many_produce_identical_reports() {
    let cfg = base_cfg();
    set_jobs(1);
    let sequential = run_replications(&cfg, 7, 6);
    set_jobs(4);
    let parallel = run_replications(&cfg, 7, 6);
    set_jobs(0);
    assert_eq!(sequential.len(), parallel.len());
    for (s, p) in sequential.iter().zip(&parallel) {
        assert_eq!(s.seed, p.seed, "reports must come back in seed order");
        assert_eq!(
            fingerprint(&cfg, s),
            fingerprint(&cfg, p),
            "seed {} diverged between --jobs 1 and --jobs 4",
            s.seed
        );
    }
}

#[test]
fn queue_backends_produce_identical_reports_across_protocols() {
    for kind in [CicKind::Tp, CicKind::Bcs, CicKind::Qbc, CicKind::Uncoordinated] {
        let mut heap_cfg = base_cfg();
        heap_cfg.protocol = ProtocolChoice::Cic(kind);
        heap_cfg.queue = QueueBackend::Heap;
        let mut cal_cfg = heap_cfg.clone();
        cal_cfg.queue = QueueBackend::Calendar;
        let a = Simulation::run(heap_cfg.clone());
        let b = Simulation::run(cal_cfg.clone());
        // Fingerprint against the same config (the artifact embeds the
        // config; only the outcome may differ between backends).
        assert_eq!(
            fingerprint(&heap_cfg, &a),
            fingerprint(&heap_cfg, &b),
            "{} diverged between heap and calendar backends",
            kind.name()
        );
    }
}

#[test]
fn queue_backends_produce_byte_identical_traces() {
    let dir = std::env::temp_dir();
    let mut paths = Vec::new();
    for backend in [QueueBackend::Heap, QueueBackend::Calendar] {
        let mut cfg = base_cfg();
        cfg.queue = backend;
        let path = dir.join(format!("mck_determinism_{backend}.jsonl"));
        let sink = simkit::trace::JsonlSink::create(&path).expect("create trace file");
        let instr = Instrumentation {
            tracer: simkit::trace::Tracer::disabled().with_jsonl(sink),
            ..Instrumentation::off()
        };
        let report = Simulation::run_with(cfg, instr);
        assert!(report.trace_emitted > 0, "trace must be non-empty");
        paths.push(path);
    }
    let heap_bytes = std::fs::read(&paths[0]).expect("heap trace");
    let cal_bytes = std::fs::read(&paths[1]).expect("calendar trace");
    assert!(!heap_bytes.is_empty());
    assert_eq!(
        heap_bytes, cal_bytes,
        "trace streams must be byte-identical across queue backends"
    );
    for p in paths {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn flattened_sweep_is_jobs_invariant() {
    let cfg = base_cfg();
    let ts = [100.0, 300.0];
    set_jobs(1);
    let seq = mck::experiments::run_sweep(&cfg, &ts, 3, 3);
    set_jobs(3);
    let par = mck::experiments::run_sweep(&cfg, &ts, 3, 3);
    set_jobs(0);
    assert_eq!(seq.len(), par.len());
    for ((t_a, a), (t_b, b)) in seq.iter().zip(&par) {
        assert_eq!(t_a, t_b);
        assert_eq!(a.n_tot, b.n_tot);
        assert_eq!(a.n_basic, b.n_basic);
        assert_eq!(a.n_forced, b.n_forced);
        assert_eq!(a.piggyback_bytes, b.piggyback_bytes);
        assert_eq!(a.msgs_delivered, b.msgs_delivered);
    }
}
