//! End-to-end tests for `mck serve`: a real server on an ephemeral port,
//! driven over TCP by the servekit client.
//!
//! The contract under test is the tentpole acceptance rule: a warm `POST
//! /run` answers without executing a single simulation event and returns
//! bytes identical to the cold response, and identical in-flight requests
//! coalesce onto one computation.

use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};

use servekit::http::{client_request, header_value};
use servekit::server::{ServeOptions, ServeService, ServeSummary, Server};

/// Boots a server on an ephemeral port with a fresh temp cache.
/// Returns the address, the service handle (for counter assertions), the
/// join handle yielding the drain summary, and the cache dir for cleanup.
fn boot(tag: &str) -> (
    String,
    Arc<ServeService>,
    std::thread::JoinHandle<ServeSummary>,
    std::path::PathBuf,
) {
    let dir = std::env::temp_dir().join(format!("mck_e2e_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let server = Server::bind(&ServeOptions {
        cache_dir: dir.clone(),
        ..ServeOptions::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let service = server.service();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    (addr, service, handle, dir)
}

fn shutdown(addr: &str) {
    client_request(addr, "POST", "/shutdown", b"").expect("shutdown request");
}

#[test]
fn warm_request_is_byte_identical_and_runs_nothing() {
    let (addr, service, handle, dir) = boot("warm");
    let body = br#"{"protocol":"QBC","horizon":500,"t_switch":100,"seed":3}"#;

    let (status, headers, cold) = client_request(&addr, "POST", "/run", body).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&cold));
    assert_eq!(header_value(&headers, "x-mck-cache"), Some("miss"));
    let key = header_value(&headers, "x-mck-key").expect("key header").to_string();
    assert_eq!(service.metrics.sim_runs.load(Ordering::SeqCst), 1);
    let events_cold = service.metrics.sim_events.load(Ordering::SeqCst);
    assert!(events_cold > 0, "the cold run dispatched events");

    let (status, headers, warm) = client_request(&addr, "POST", "/run", body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(header_value(&headers, "x-mck-cache"), Some("hit"));
    assert_eq!(header_value(&headers, "x-mck-key"), Some(key.as_str()));
    assert_eq!(warm, cold, "warm response must be byte-identical");
    // The acceptance rule, checked against the counters: zero events, zero
    // runs, one hit.
    assert_eq!(service.metrics.sim_runs.load(Ordering::SeqCst), 1);
    assert_eq!(service.metrics.sim_events.load(Ordering::SeqCst), events_cold);
    assert_eq!(service.metrics.hits.load(Ordering::SeqCst), 1);
    assert_eq!(service.metrics.misses.load(Ordering::SeqCst), 1);

    // Equivalent body with members reordered: still the same address.
    let reordered = br#"{"seed":3,"t_switch":100,"horizon":500,"protocol":"QBC"}"#;
    let (_, headers, again) = client_request(&addr, "POST", "/run", reordered).unwrap();
    assert_eq!(header_value(&headers, "x-mck-cache"), Some("hit"));
    assert_eq!(again, cold);

    shutdown(&addr);
    let summary = handle.join().unwrap();
    assert_eq!(summary.hits, 2);
    assert_eq!(summary.misses, 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_identical_requests_compute_once() {
    let (addr, service, handle, dir) = boot("coalesce");
    // A horizon long enough that followers arrive while the leader is still
    // computing; coalescing (or, if the leader wins the race, a cache hit)
    // must keep the run count at one either way.
    let body: &[u8] = br#"{"protocol":"QBC","horizon":3000,"seed":11}"#;
    let clients = 4;
    let barrier = Arc::new(Barrier::new(clients));
    let mut joins = Vec::new();
    for _ in 0..clients {
        let addr = addr.clone();
        let barrier = barrier.clone();
        joins.push(std::thread::spawn(move || {
            barrier.wait();
            client_request(&addr, "POST", "/run", body).expect("concurrent request")
        }));
    }
    let responses: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
    for (status, _, resp) in &responses {
        assert_eq!(*status, 200, "{}", String::from_utf8_lossy(resp));
        assert_eq!(resp, &responses[0].2, "all clients see the same bytes");
    }
    assert_eq!(
        service.metrics.sim_runs.load(Ordering::SeqCst),
        1,
        "identical in-flight requests must share one computation"
    );
    let m = &service.metrics;
    assert_eq!(
        m.misses.load(Ordering::SeqCst)
            + m.coalesced.load(Ordering::SeqCst)
            + m.hits.load(Ordering::SeqCst),
        clients as u64
    );
    assert_eq!(m.misses.load(Ordering::SeqCst), 1);

    shutdown(&addr);
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn status_metrics_and_errors_over_the_wire() {
    let (addr, service, handle, dir) = boot("status");

    let (status, _, body) = client_request(&addr, "GET", "/status", b"").unwrap();
    assert_eq!(status, 200);
    let doc = simkit::json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
    assert_eq!(
        doc.get("schema").and_then(simkit::json::Json::as_str),
        Some("mck.serve_status/v1")
    );

    let (status, _, body) = client_request(&addr, "GET", "/metrics", b"").unwrap();
    assert_eq!(status, 200);
    let text = String::from_utf8(body).unwrap();
    assert!(text.contains("# TYPE serve_requests counter"), "{text}");

    // A malformed body is a 400 and counts as an error, not a crash.
    let (status, _, _) = client_request(&addr, "POST", "/run", b"{not json").unwrap();
    assert_eq!(status, 400);
    // An unknown config member is rejected, not silently hashed.
    let (status, _, body) = client_request(&addr, "POST", "/run", br#"{"t_swich":5}"#).unwrap();
    assert_eq!(status, 400);
    assert!(String::from_utf8_lossy(&body).contains("t_swich"));
    let (status, _, _) = client_request(&addr, "GET", "/nope", b"").unwrap();
    assert_eq!(status, 404);
    let (status, _, _) = client_request(&addr, "GET", "/run", b"").unwrap();
    assert_eq!(status, 405);
    assert!(service.metrics.errors.load(Ordering::SeqCst) >= 4);
    assert_eq!(service.metrics.sim_runs.load(Ordering::SeqCst), 0);

    shutdown(&addr);
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_requests_cache_and_reload_across_restarts() {
    let (addr, service, handle, dir) = boot("sweep");
    let body: &[u8] =
        br#"{"protocol":"BCS","horizon":400,"t_switch_list":[100,200],"replications":2}"#;
    let (status, headers, cold) = client_request(&addr, "POST", "/sweep", body).unwrap();
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&cold));
    assert_eq!(header_value(&headers, "x-mck-cache"), Some("miss"));
    let runs = service.metrics.sim_runs.load(Ordering::SeqCst);
    assert_eq!(runs, 4, "2 points x 2 replications");
    shutdown(&addr);
    handle.join().unwrap();

    // A fresh server over the same cache directory starts warm: the entry
    // survives the restart and is served without any computation.
    let server = Server::bind(&ServeOptions {
        cache_dir: dir.clone(),
        ..ServeOptions::default()
    })
    .unwrap();
    let addr = server.local_addr().unwrap().to_string();
    let service = server.service();
    let handle = std::thread::spawn(move || server.run().expect("serve loop"));
    let (status, headers, warm) = client_request(&addr, "POST", "/sweep", body).unwrap();
    assert_eq!(status, 200);
    assert_eq!(header_value(&headers, "x-mck-cache"), Some("hit"));
    assert_eq!(warm, cold, "the restarted server serves identical bytes");
    assert_eq!(service.metrics.sim_runs.load(Ordering::SeqCst), 0);
    shutdown(&addr);
    handle.join().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
