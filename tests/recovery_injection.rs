//! End-to-end pins for the fault-injection and live-recovery engine (E10).
//!
//! Three properties the subsystem must never lose:
//!
//! 1. With failures disabled, the injection machinery is inert: identical
//!    seeds keep producing byte-identical reports, and no recovery block
//!    appears.
//! 2. With failures enabled, runs are a pure function of the seed — crash
//!    times, recovery pricing, and replay counts are all drawn from the
//!    dedicated failure RNG stream.
//! 3. Optimistic logging with a zero flush window degenerates exactly to
//!    pessimistic logging: same undone work, same unstable losses (none),
//!    same stable-storage write accounting.

use mck::prelude::*;

fn faulty(proto: CicKind, logging: LoggingMode, flush: f64) -> SimConfig {
    let mut cfg = SimConfig::paper(ProtocolChoice::Cic(proto), 500.0, 0.8, 0.0);
    cfg.horizon = 2000.0;
    cfg.logging = logging;
    cfg.flush_latency = flush;
    cfg.fail_mtbf = 400.0;
    cfg.seed = 11;
    cfg.check().unwrap();
    cfg
}

/// The full human-readable report doubles as a cheap structural digest:
/// every counter the run produced lands in it.
fn digest(cfg: SimConfig) -> String {
    Simulation::run(cfg).summary_table().render()
}

#[test]
fn failures_off_runs_stay_deterministic_and_untouched() {
    let mut cfg = SimConfig::paper(ProtocolChoice::Cic(CicKind::Qbc), 500.0, 0.8, 0.0);
    cfg.horizon = 1500.0;
    cfg.seed = 3;
    assert!(!cfg.failures_enabled());
    let a = Simulation::run(cfg.clone());
    assert!(a.recovery.is_none(), "no failures -> no recovery block");
    assert_eq!(
        a.summary_table().render(),
        digest(cfg),
        "repeat runs of an identical failure-free config must match"
    );
}

#[test]
fn failure_injection_is_deterministic_per_seed() {
    for proto in [CicKind::Tp, CicKind::Qbc] {
        let cfg = faulty(proto, LoggingMode::Optimistic, 5.0);
        let a = Simulation::run(cfg.clone());
        let rec = a.recovery.expect("failure injection was enabled");
        assert!(
            rec.mh_crashes > 0,
            "{}: MTBF 400 over horizon 2000 must produce crashes",
            proto.name()
        );
        assert!(rec.total_downtime > 0.0);
        assert_eq!(
            a.summary_table().render(),
            digest(cfg.clone()),
            "{}: same seed must reproduce the same crashes and recoveries",
            proto.name()
        );
        // A different seed moves the crash times.
        let mut other = cfg;
        other.seed = 12;
        assert_ne!(a.summary_table().render(), digest(other));
    }
}

#[test]
fn zero_flush_latency_optimistic_matches_pessimistic() {
    for proto in [CicKind::Tp, CicKind::Bcs, CicKind::Qbc] {
        let pess = Simulation::run(faulty(proto, LoggingMode::Pessimistic, 0.0));
        let opt = Simulation::run(faulty(proto, LoggingMode::Optimistic, 0.0));
        let (p, o) = (
            pess.recovery.expect("failures enabled"),
            opt.recovery.expect("failures enabled"),
        );
        assert_eq!(o.unstable_lost, 0, "{}: nothing can be in flight", proto.name());
        assert_eq!(p.mh_crashes, o.mh_crashes, "{}", proto.name());
        assert_eq!(p.replayed_receives, o.replayed_receives, "{}", proto.name());
        assert!(
            (p.total_undone_time - o.total_undone_time).abs() < 1e-9,
            "{}: undone work must match ({} vs {})",
            proto.name(),
            p.total_undone_time,
            o.total_undone_time
        );
        let (ps, os) = (
            pess.log_stats.expect("logging enabled"),
            opt.log_stats.expect("logging enabled"),
        );
        assert_eq!(
            ps.stable_write_bytes, os.stable_write_bytes,
            "{}: a zero flush window avoids no writes",
            proto.name()
        );
    }
}

#[test]
fn positive_flush_window_avoids_writes_and_loses_unstable_receives() {
    // Across protocols and a long horizon the flush window must show its
    // two signature effects somewhere: fewer synchronous stable writes,
    // and (with crashes striking inside the window) receives lost from
    // unflushed buffers turning into undone work.
    let mut avoided = false;
    for proto in [CicKind::Tp, CicKind::Bcs, CicKind::Qbc] {
        let pess = Simulation::run(faulty(proto, LoggingMode::Pessimistic, 0.0));
        let opt = Simulation::run(faulty(proto, LoggingMode::Optimistic, 20.0));
        let (ps, os) = (
            pess.log_stats.expect("logging enabled"),
            opt.log_stats.expect("logging enabled"),
        );
        avoided |= os.stable_write_bytes < ps.stable_write_bytes;
    }
    assert!(avoided, "a 20 t.u. flush window never avoided a stable write");
}
