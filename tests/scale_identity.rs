//! Byte-identity pinning for the large-N hot-path work.
//!
//! The SoA host-state layout and the cell-local iteration refactor are pure
//! reorganizations: they must not move a single modelled quantity. This test
//! pins the full deterministic `mck.run/v1` artifact (every counter, gauge
//! and per-host series the run can observe, `timing` members stripped) for
//! the paper configuration of all four trait-based protocols to the hashes
//! captured on the pre-refactor tree. Any trajectory change — an RNG drawn
//! in a different order, a victim list in a different order, a counter
//! drifting — shows up here as a hash mismatch.
//!
//! The default (dense) piggyback codec is part of the pin: `--pb-codec rle`
//! is opt-in precisely so this artifact stays byte-identical.

use cic::CicKind;
use mck::artifact::{deterministic_view, run_artifact};
use mck::prelude::*;

/// FNV-1a 64-bit, hand-rolled (no external hash dependencies).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The deterministic artifact text for the paper configuration of `kind`
/// (T_switch = 1000, P_switch = 0.8, H = 0, seed 1, horizon 10000).
fn artifact_text(kind: CicKind) -> String {
    let cfg = SimConfig::paper(ProtocolChoice::Cic(kind), 1000.0, 0.8, 0.0);
    let report = Simulation::run(cfg.clone());
    deterministic_view(&run_artifact(&cfg, &report)).to_pretty()
}

/// (protocol, artifact byte length, FNV-1a 64 of the artifact) captured on
/// the tree *before* the SoA + cell-local refactor landed.
const GOLDEN: [(CicKind, usize, u64); 4] = [
    (CicKind::Tp, 1263, 0x853ce57be2519116),
    (CicKind::Bcs, 1260, 0x969701d1cd827ccd),
    (CicKind::Qbc, 1260, 0x0651c514152f5ac4),
    (CicKind::Uncoordinated, 1264, 0x9339fe364dd04836),
];

#[test]
fn paper_config_artifacts_are_byte_identical_to_pre_refactor_tree() {
    let mut drift = String::new();
    for (kind, len, hash) in GOLDEN {
        let text = artifact_text(kind);
        if (text.len(), fnv1a64(text.as_bytes())) != (len, hash) {
            drift += &format!(
                "    ({kind:?}: expected len {len} hash {hash:#018x}, \
                 actual len {} hash {:#018x})\n",
                text.len(),
                fnv1a64(text.as_bytes()),
            );
        }
    }
    assert!(
        drift.is_empty(),
        "deterministic mck.run/v1 artifacts drifted from the pre-refactor goldens:\n{drift}"
    );
}

#[test]
fn artifact_text_is_stable_within_one_build() {
    // Meta-check: two runs of the same config produce the same text, so a
    // golden mismatch above means drift, not flakiness.
    let a = artifact_text(CicKind::Tp);
    let b = artifact_text(CicKind::Tp);
    assert_eq!(a, b);
}
