//! The protocols' correctness theorems, verified on full simulator traces.
//!
//! These are the paper's central safety claims: every checkpoint taken by a
//! communication-induced protocol belongs to a consistent global checkpoint
//! *built on the fly* — same-index lines for BCS/QBC, dependency-vector
//! lines for TP. We run the real mobile simulation (hand-offs,
//! disconnections, duplicated deliveries and all) and check the recorded
//! trace against the protocol-agnostic consistency oracle.

use causality::cut::{is_consistent, max_consistent_cut_containing, Cut};
use causality::trace::Trace;
use cic::recovery::{all_index_lines, index_line, max_index};
use mck::prelude::*;

fn traced_run(kind: CicKind, seed: u64, dup_prob: f64) -> Trace {
    let cfg = SimConfig {
        protocol: ProtocolChoice::Cic(kind),
        t_switch: 150.0,
        p_switch: 0.8,
        horizon: 1200.0,
        record_trace: true,
        dup_prob,
        seed,
        ..Default::default()
    };
    Simulation::run(cfg).trace.expect("trace requested")
}

#[test]
fn bcs_same_index_lines_are_consistent() {
    for seed in [1, 2, 3] {
        let trace = traced_run(CicKind::Bcs, seed, 0.0);
        assert!(max_index(&trace) > 0, "no indices advanced");
        for (k, line) in all_index_lines(&trace) {
            assert!(
                is_consistent(&trace, &line),
                "seed {seed}: BCS line {k} has an orphan message"
            );
        }
    }
}

#[test]
fn qbc_same_index_lines_are_consistent() {
    for seed in [1, 2, 3] {
        let trace = traced_run(CicKind::Qbc, seed, 0.0);
        for (k, line) in all_index_lines(&trace) {
            assert!(
                is_consistent(&trace, &line),
                "seed {seed}: QBC line {k} has an orphan message"
            );
        }
    }
}

#[test]
fn qbc_replacement_survivor_lines_are_consistent() {
    // QBC's refinement: for each index, the LAST checkpoint with that index
    // (the replacement survivor) can stand in for the first.
    let trace = traced_run(CicKind::Qbc, 5, 0.0);
    for k in 0..=max_index(&trace) {
        let line = Cut::new(
            trace
                .procs()
                .map(|p| {
                    let ckpts = trace.checkpoints(p);
                    ckpts
                        .iter()
                        .filter(|c| c.index == k)
                        .map(|c| c.ordinal)
                        .next_back()
                        .or_else(|| ckpts.iter().find(|c| c.index >= k).map(|c| c.ordinal))
                        .unwrap_or(ckpts.len())
                })
                .collect(),
        );
        assert!(
            is_consistent(&trace, &line),
            "QBC survivor line {k} inconsistent"
        );
    }
}

#[test]
fn tp_checkpoints_all_belong_to_consistent_cuts() {
    let trace = traced_run(CicKind::Tp, 4, 0.0);
    for p in trace.procs() {
        for c in trace.checkpoints(p) {
            assert!(
                max_consistent_cut_containing(&trace, p, c.ordinal).is_some(),
                "TP checkpoint ({p}, ord {}) is useless",
                c.ordinal
            );
        }
    }
}

#[test]
fn index_protocol_checkpoints_are_never_useless() {
    for kind in [CicKind::Bcs, CicKind::Qbc] {
        let trace = traced_run(kind, 6, 0.0);
        for p in trace.procs() {
            for c in trace.checkpoints(p) {
                assert!(
                    max_consistent_cut_containing(&trace, p, c.ordinal).is_some(),
                    "{kind}: checkpoint ({p}, ord {}) is useless",
                    c.ordinal
                );
            }
        }
    }
}

#[test]
fn guarantees_survive_duplicated_deliveries() {
    // The at-least-once transport may duplicate; dedup must keep the
    // protocol's view exactly-once, preserving every guarantee.
    for kind in CicKind::PAPER {
        let trace = traced_run(kind, 8, 0.4);
        match kind {
            CicKind::Bcs | CicKind::Qbc => {
                for (k, line) in all_index_lines(&trace) {
                    assert!(
                        is_consistent(&trace, &line),
                        "{kind} with duplicates: line {k} inconsistent"
                    );
                }
            }
            _ => {
                for p in trace.procs() {
                    for c in trace.checkpoints(p) {
                        assert!(
                            max_consistent_cut_containing(&trace, p, c.ordinal).is_some(),
                            "{kind} with duplicates: useless checkpoint"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn index_lines_use_volatile_fallback_correctly() {
    // A host that never reached index k contributes its volatile state; the
    // line must still be consistent (it never received anything at >= k).
    let trace = traced_run(CicKind::Bcs, 11, 0.0);
    let k = max_index(&trace);
    let line = index_line(&trace, k);
    assert!(is_consistent(&trace, &line));
}

#[test]
fn recovery_after_every_single_failure_is_consistent() {
    use causality::recovery::recovery_line_after_failure;
    for kind in CicKind::PAPER {
        let trace = traced_run(kind, 13, 0.0);
        for failed in trace.procs() {
            let line = recovery_line_after_failure(&trace, &[failed]);
            assert!(
                is_consistent(&trace, &line),
                "{kind}: recovery line after {failed} failure inconsistent"
            );
        }
    }
}
