//! The observability overlay guarantee, end to end: profiling, span
//! attribution, metrics, and progress reporting observe a run without
//! perturbing it. Same config + seed must yield byte-identical run
//! artifacts whatever instrumentation is attached, and the profile
//! artifact's deterministic view (everything outside `timing` members)
//! must be byte-stable too.

use mck::artifact;
use mck::prelude::*;
use simkit::json::Json;

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        protocol: ProtocolChoice::Cic(CicKind::Qbc),
        t_switch: 200.0,
        p_switch: 0.8,
        horizon: 1500.0,
        seed,
        ..Default::default()
    }
}

/// Pretty-printed `mck.run/v1` bytes for one run under `instr`.
fn run_bytes(seed: u64, instr: Instrumentation) -> String {
    let c = cfg(seed);
    let r = Simulation::run_with(c.clone(), instr);
    artifact::run_artifact(&c, &r).to_pretty()
}

#[test]
fn overlays_change_no_bytes_of_the_run_artifact() {
    for seed in [1, 7, 42] {
        let plain = run_bytes(
            seed,
            Instrumentation {
                metrics: true,
                ..Instrumentation::off()
            },
        );
        let overlaid = run_bytes(
            seed,
            Instrumentation {
                metrics: true,
                profile: true,
                spans: true,
                progress: true,
                ..Instrumentation::off()
            },
        );
        assert_eq!(
            plain, overlaid,
            "seed {seed}: instrumentation overlays must not change artifact bytes"
        );
    }
}

#[test]
fn overlays_leave_every_deterministic_report_field_unchanged() {
    let c = cfg(3);
    let plain = Simulation::run_with(c.clone(), Instrumentation::off());
    let overlaid = Simulation::run_with(
        c,
        Instrumentation {
            metrics: true,
            profile: true,
            spans: true,
            progress: true,
            ..Instrumentation::off()
        },
    );
    assert_eq!(plain.n_tot(), overlaid.n_tot());
    assert_eq!(plain.ckpts, overlaid.ckpts);
    assert_eq!(plain.msgs_sent, overlaid.msgs_sent);
    assert_eq!(plain.msgs_delivered, overlaid.msgs_delivered);
    assert_eq!(plain.events, overlaid.events);
    assert_eq!(plain.handoffs, overlaid.handoffs);
    assert_eq!(plain.end_time, overlaid.end_time);
    assert_eq!(plain.net.per_mh_bytes, overlaid.net.per_mh_bytes);
    // The plain run carries no observation state; the overlaid one does.
    assert!(plain.profile.is_none() && plain.spans.is_none());
    assert!(overlaid.profile.is_some() && overlaid.spans.is_some());
}

#[test]
fn profile_artifact_validates_and_spans_cover_the_engine_loop() {
    let c = cfg(11);
    let r = Simulation::run_with(
        c.clone(),
        Instrumentation {
            metrics: true,
            profile: true,
            spans: true,
            ..Instrumentation::off()
        },
    );
    let art = artifact::profile_artifact(&c, &r);
    assert_eq!(artifact::validate(&art).unwrap(), artifact::PROFILE_SCHEMA);

    // Per-event-type span totals account for (nearly) all engine wall time:
    // the spanned loop chains marks, so top-level spans tile it by
    // construction. Allow slack only for sub-resolution clocks.
    let profile = r.profile.as_ref().expect("profiled");
    let spans = r.spans.as_ref().expect("spanned");
    let covered = spans.top_level_wall_ns();
    assert!(
        covered as f64 >= 0.95 * profile.wall_ns as f64 || profile.wall_ns < 10_000,
        "span coverage too low: {covered} of {} ns",
        profile.wall_ns
    );
    let cov = art
        .get("timing")
        .and_then(|t| t.get("span_coverage"))
        .and_then(Json::as_f64)
        .expect("timing.span_coverage");
    assert!(cov > 0.0);

    // One top-level span per dispatched event.
    let per_event: u64 = spans
        .rows
        .iter()
        .filter(|row| !row.path.contains(';'))
        .map(|row| row.count)
        .sum();
    assert_eq!(per_event, r.events);

    // The nested phase spans are present and carry byte attribution: hosts
    // poll their mailboxes during activity events, so decode work lands
    // under "activity", with wire bytes attributed to the piggyback shape.
    let dec = spans.row("activity;piggyback.decode").expect("decode span");
    assert!(dec.count > 0);
    let shape = spans
        .row("activity;piggyback.decode;index")
        .expect("per-shape attribution");
    assert!(shape.bytes > 0, "index piggyback carries wire bytes");
    assert!(spans.to_folded().lines().count() > 3);
}

#[test]
fn profile_artifact_deterministic_view_is_seed_stable() {
    let instr = || Instrumentation {
        metrics: true,
        profile: true,
        spans: true,
        ..Instrumentation::off()
    };
    let c = cfg(5);
    let a = artifact::profile_artifact(&c, &Simulation::run_with(c.clone(), instr()));
    let b = artifact::profile_artifact(&c, &Simulation::run_with(c.clone(), instr()));
    // Wall-clock members differ run to run...
    assert!(a.get("timing").is_some());
    // ...but the deterministic view is byte-identical.
    assert_eq!(
        artifact::deterministic_view(&a).to_pretty(),
        artifact::deterministic_view(&b).to_pretty()
    );
    // A different seed changes the deterministic view.
    let c2 = cfg(6);
    let other = artifact::profile_artifact(&c2, &Simulation::run_with(c2.clone(), instr()));
    assert_ne!(
        artifact::deterministic_view(&a).to_pretty(),
        artifact::deterministic_view(&other).to_pretty()
    );
}
